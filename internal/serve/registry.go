// Package serve exposes trained Equation-1 power models as an
// always-on HTTP service — the run-time power monitor the paper
// motivates ("a growing need for accurate real-time power information
// for efficient power management"). It provides a model registry, a
// concurrency-safe session layer over core.StreamSession, streaming
// NDJSON estimation, batch prediction, and a text metrics endpoint.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
)

// ModelInfo describes one registered model version, as reported by
// GET /v1/models.
type ModelInfo struct {
	Name      string   `json:"name"`
	Version   int      `json:"version"`
	Latest    bool     `json:"latest"`
	Events    []string `json:"events"`
	R2        float64  `json:"r2"`
	Estimator string   `json:"estimator,omitempty"`
	TrainN    int      `json:"train_n,omitempty"`
}

// registrySnapshot is one immutable generation of the registry: the
// version table, the precomputed /v1/models listing, and the sole
// registered name (for empty-key resolution). Snapshots are never
// mutated after publication — a writer builds a fresh one and swaps
// the pointer — so readers need no lock at all.
type registrySnapshot struct {
	models map[string][]*core.Model
	infos  []ModelInfo
	// soleName is the only registered model name when exactly one is
	// registered (the unambiguous default for an empty lookup key), ""
	// otherwise.
	soleName string
}

// Registry holds deployed models keyed by name and version. Adding a
// model under an existing name appends a new version; lookups resolve
// either a bare name (latest version) or an explicit "name@version"
// key, so a monitoring fleet can pin estimates to the exact
// calibration that produced them.
//
// Reads are lock-free: every lookup is one atomic load of the current
// copy-on-write snapshot, so the estimate/predict hot paths never
// contend with each other or with a deploy. Add builds a new snapshot
// under a writer mutex and publishes it with an atomic swap — a model
// uploaded mid-traffic is either entirely absent or entirely present,
// never torn, and streams resolved against the old snapshot keep
// serving it unchanged.
type Registry struct {
	writeMu sync.Mutex
	snap    atomic.Pointer[registrySnapshot]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.snap.Store(&registrySnapshot{models: map[string][]*core.Model{}})
	return r
}

// Add registers m under name and returns the version assigned to it
// (1 for a new name, previous+1 on redeploy).
func (r *Registry) Add(name string, m *core.Model) (int, error) {
	if name == "" || strings.Contains(name, "@") {
		return 0, fmt.Errorf("serve: invalid model name %q (must be non-empty, without '@')", name)
	}
	if m == nil {
		return 0, fmt.Errorf("serve: nil model for %q", name)
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	old := r.snap.Load()
	models := make(map[string][]*core.Model, len(old.models)+1)
	for n, vs := range old.models {
		models[n] = vs // published slices are immutable; share them
	}
	// The updated name gets a fresh backing array: appending in place
	// could write into an array a published snapshot still references.
	models[name] = append(append([]*core.Model(nil), old.models[name]...), m)
	next := &registrySnapshot{models: models}
	next.infos = buildInfos(models)
	if len(models) == 1 {
		next.soleName = name
	}
	r.snap.Store(next)
	return len(models[name]), nil
}

// buildInfos precomputes the sorted /v1/models listing for a snapshot,
// so List on the read path is a pointer load instead of a sort.
func buildInfos(models map[string][]*core.Model) []ModelInfo {
	var out []ModelInfo
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		versions := models[n]
		for vi, m := range versions {
			info := ModelInfo{
				Name:    n,
				Version: vi + 1,
				Latest:  vi == len(versions)-1,
				Events:  make([]string, len(m.Events)),
			}
			for i, id := range m.Events {
				info.Events[i] = pmu.Lookup(id).Name
			}
			if m.Fit != nil {
				info.R2 = m.Fit.R2
				info.Estimator = m.Fit.Estimator.String()
				info.TrainN = m.Fit.N
			}
			out = append(out, info)
		}
	}
	return out
}

// LoadFile reads a persisted model document (core.ReadJSON) and
// registers it under the file's base name without extension.
func (r *Registry) LoadFile(path string) (name string, version int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	m, err := core.ReadJSON(f)
	if err != nil {
		return "", 0, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	version, err = r.Add(name, m)
	return name, version, err
}

// ModelRef is a fully resolved registry entry: the canonical name,
// the concrete version the lookup landed on, and the model itself.
// The serving layer keys per-model-version quality aggregation on
// Key(), so a session pinned to name@2 and one following "latest"
// that resolves to the same version share one quality stream.
type ModelRef struct {
	Name    string
	Version int
	Model   *core.Model
}

// Key renders the canonical "name@version" registry key.
func (r ModelRef) Key() string { return r.Name + "@" + strconv.Itoa(r.Version) }

// Get resolves key — "name" for the latest version or "name@N" for a
// pinned one. The empty key resolves only when exactly one model name
// is registered (the unambiguous default).
func (r *Registry) Get(key string) (*core.Model, error) {
	ref, err := r.Resolve(key)
	if err != nil {
		return nil, err
	}
	return ref.Model, nil
}

// Resolve is Get with the resolved name and concrete version attached.
// It reads one atomic snapshot and allocates nothing on success, so
// per-request (and loadgen per-sample) resolution is contention-free.
func (r *Registry) Resolve(key string) (ModelRef, error) {
	snap := r.snap.Load()
	name, version := key, 0
	if i := strings.IndexByte(key, '@'); i >= 0 {
		name = key[:i]
		v, err := strconv.Atoi(key[i+1:])
		if err != nil || v <= 0 {
			return ModelRef{}, fmt.Errorf("serve: bad model version in %q", key)
		}
		version = v
	}
	if name == "" {
		if snap.soleName == "" {
			return ModelRef{}, fmt.Errorf("serve: model parameter required (%d models registered)", len(snap.models))
		}
		name = snap.soleName
	}
	versions, ok := snap.models[name]
	if !ok {
		return ModelRef{}, fmt.Errorf("serve: unknown model %q", name)
	}
	if version == 0 {
		version = len(versions)
	} else if version > len(versions) {
		return ModelRef{}, fmt.Errorf("serve: model %q has no version %d (latest %d)", name, version, len(versions))
	}
	return ModelRef{Name: name, Version: version, Model: versions[version-1]}, nil
}

// Count returns the number of registered model names — the shallow
// readiness signal (a server with zero models can serve nothing).
func (r *Registry) Count() int {
	return len(r.snap.Load().models)
}

// List reports every registered model version, sorted by name then
// version. The returned slice is the snapshot's precomputed listing,
// shared between callers — treat it as read-only.
func (r *Registry) List() []ModelInfo {
	return r.snap.Load().infos
}
