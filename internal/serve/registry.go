// Package serve exposes trained Equation-1 power models as an
// always-on HTTP service — the run-time power monitor the paper
// motivates ("a growing need for accurate real-time power information
// for efficient power management"). It provides a model registry, a
// concurrency-safe session layer over core.StreamSession, streaming
// NDJSON estimation, batch prediction, and a text metrics endpoint.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
)

// ModelInfo describes one registered model version, as reported by
// GET /v1/models.
type ModelInfo struct {
	Name      string   `json:"name"`
	Version   int      `json:"version"`
	Latest    bool     `json:"latest"`
	Events    []string `json:"events"`
	R2        float64  `json:"r2"`
	Estimator string   `json:"estimator,omitempty"`
	TrainN    int      `json:"train_n,omitempty"`
}

// Registry holds deployed models keyed by name and version. Adding a
// model under an existing name appends a new version; lookups resolve
// either a bare name (latest version) or an explicit "name@version"
// key, so a monitoring fleet can pin estimates to the exact
// calibration that produced them.
type Registry struct {
	mu     sync.RWMutex
	models map[string][]*core.Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string][]*core.Model)}
}

// Add registers m under name and returns the version assigned to it
// (1 for a new name, previous+1 on redeploy).
func (r *Registry) Add(name string, m *core.Model) (int, error) {
	if name == "" || strings.Contains(name, "@") {
		return 0, fmt.Errorf("serve: invalid model name %q (must be non-empty, without '@')", name)
	}
	if m == nil {
		return 0, fmt.Errorf("serve: nil model for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = append(r.models[name], m)
	return len(r.models[name]), nil
}

// LoadFile reads a persisted model document (core.ReadJSON) and
// registers it under the file's base name without extension.
func (r *Registry) LoadFile(path string) (name string, version int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	m, err := core.ReadJSON(f)
	if err != nil {
		return "", 0, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	version, err = r.Add(name, m)
	return name, version, err
}

// ModelRef is a fully resolved registry entry: the canonical name,
// the concrete version the lookup landed on, and the model itself.
// The serving layer keys per-model-version quality aggregation on
// Key(), so a session pinned to name@2 and one following "latest"
// that resolves to the same version share one quality stream.
type ModelRef struct {
	Name    string
	Version int
	Model   *core.Model
}

// Key renders the canonical "name@version" registry key.
func (r ModelRef) Key() string { return r.Name + "@" + strconv.Itoa(r.Version) }

// Get resolves key — "name" for the latest version or "name@N" for a
// pinned one. The empty key resolves only when exactly one model name
// is registered (the unambiguous default).
func (r *Registry) Get(key string) (*core.Model, error) {
	ref, err := r.Resolve(key)
	if err != nil {
		return nil, err
	}
	return ref.Model, nil
}

// Resolve is Get with the resolved name and concrete version attached.
func (r *Registry) Resolve(key string) (ModelRef, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	name, version := key, 0
	if i := strings.IndexByte(key, '@'); i >= 0 {
		name = key[:i]
		v, err := strconv.Atoi(key[i+1:])
		if err != nil || v <= 0 {
			return ModelRef{}, fmt.Errorf("serve: bad model version in %q", key)
		}
		version = v
	}
	if name == "" {
		if len(r.models) != 1 {
			return ModelRef{}, fmt.Errorf("serve: model parameter required (%d models registered)", len(r.models))
		}
		for n := range r.models {
			name = n
		}
	}
	versions, ok := r.models[name]
	if !ok {
		return ModelRef{}, fmt.Errorf("serve: unknown model %q", name)
	}
	if version == 0 {
		version = len(versions)
	} else if version > len(versions) {
		return ModelRef{}, fmt.Errorf("serve: model %q has no version %d (latest %d)", name, version, len(versions))
	}
	return ModelRef{Name: name, Version: version, Model: versions[version-1]}, nil
}

// Count returns the number of registered model names — the shallow
// readiness signal (a server with zero models can serve nothing).
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// List reports every registered model version, sorted by name then
// version.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ModelInfo
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		versions := r.models[n]
		for vi, m := range versions {
			info := ModelInfo{
				Name:    n,
				Version: vi + 1,
				Latest:  vi == len(versions)-1,
				Events:  make([]string, len(m.Events)),
			}
			for i, id := range m.Events {
				info.Events[i] = pmu.Lookup(id).Name
			}
			if m.Fit != nil {
				info.R2 = m.Fit.R2
				info.Estimator = m.Fit.Estimator.String()
				info.TrainN = m.Fit.N
			}
			out = append(out, info)
		}
	}
	return out
}
