package serve

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pmcpower/internal/obs"
)

// TestMetricsExpositionByteStable exercises the registry-backed
// /metrics endpoint: after traffic on several endpoints the
// exposition must contain the request-latency histograms, session
// counters and gauges, with metric families and label sets in
// canonical sorted order — byte-for-byte identical across renders.
func TestMetricsExpositionByteStable(t *testing.T) {
	// Pin the clock: the uptime gauge samples Now at render time, and
	// byte-stability is a fixed-values property.
	frozen := time.Unix(1_700_000_000, 0)
	s, ts := newTestServer(t, Config{Now: func() time.Time { return frozen }})

	for _, path := range []string{"/healthz", "/v1/models", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// One predict request (even a rejected one) lands in the request
	// histogram via the middleware.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	first := string(body)
	for _, want := range []string{
		`pmcpowerd_requests_total{path="/healthz"} 2`,
		`pmcpowerd_requests_total{path="/v1/models"} 1`,
		`pmcpowerd_request_seconds_count{path="/v1/predict"} 1`,
		`pmcpowerd_samples_rejected_total{reason="parse"} 1`,
		"pmcpowerd_sessions_active 0",
		"pmcpowerd_models 1",
		"# TYPE pmcpowerd_request_seconds histogram",
		"# TYPE pmcpowerd_requests_total counter",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("/metrics lacks %q:\n%s", want, first)
		}
	}

	// Byte-stable: with no traffic in between, two renders must be
	// identical bytes (the registry guarantees canonical ordering, not
	// insertion ordering).
	direct1 := s.Metrics().Render()
	direct2 := s.Metrics().Render()
	if direct1 != direct2 {
		t.Fatalf("registry render not byte-stable:\n--- 1 ---\n%s--- 2 ---\n%s", direct1, direct2)
	}

	// Canonical ordering: family names must appear in sorted order.
	var lastFamily string
	for _, line := range strings.Split(direct1, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fam := strings.Fields(line)[2]
		if lastFamily != "" && fam < lastFamily {
			t.Errorf("family %q rendered after %q — not sorted", fam, lastFamily)
		}
		lastFamily = fam
	}
	if got := s.Metrics().TotalRequests(); got < 5 {
		t.Errorf("TotalRequests = %d, want >= 5", got)
	}
}

// syncBuffer is a goroutine-safe log sink: the middleware writes the
// request record after the handler returns, which can race a client
// that has already read the full response.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestRequestLogging asserts the middleware writes one structured
// JSON record per request with method, path, status and session id.
func TestRequestLogging(t *testing.T) {
	var logBuf syncBuffer
	logger := obs.NewLogger(&logBuf, 0)
	_, ts := newTestServer(t, Config{Logger: logger})

	resp, err := http.Get(ts.URL + "/healthz?session=abc")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	var logged string
	for {
		logged = logBuf.String()
		if strings.Contains(logged, `"msg":"request"`) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		`"msg":"request"`, `"method":"GET"`, `"path":"/healthz"`, `"status":200`, `"session":"abc"`, `"duration_ms":`,
	} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log lacks %s:\n%s", want, logged)
		}
	}
}

// TestRequestSpans asserts the middleware records one span per
// request on the configured tracer — the dump pmcpowerd serves at
// /debug/trace.
func TestRequestSpans(t *testing.T) {
	tracer := obs.NewTracer()
	_, ts := newTestServer(t, Config{Tracer: tracer})

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	deadline := time.Now().Add(2 * time.Second)
	for tracer.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	spans := tracer.Spans()
	if len(spans) < 3 {
		t.Fatalf("tracer has %d spans, want >= 3", len(spans))
	}
	for _, s := range spans {
		if s.Name != "http /healthz" {
			t.Errorf("unexpected span %q", s.Name)
		}
	}
}
