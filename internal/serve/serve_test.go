package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

// --- fixtures --------------------------------------------------------

var (
	fixOnce  sync.Once
	fixModel *core.Model
	fixRows  []*acquisition.Row
	fixErr   error
)

func testEvents() []pmu.EventID {
	var out []pmu.EventID
	for _, n := range []string{"LST_INS", "STL_CCY", "L3_TCM", "TOT_CYC", "BR_UCN", "BR_TKN"} {
		out = append(out, pmu.MustByName(n).ID)
	}
	return out
}

// fixture trains one model on a two-frequency campaign — enough rows
// for a stable fit, cheap enough to share across all serve tests.
func fixture(t *testing.T) (*core.Model, []*acquisition.Row) {
	t.Helper()
	fixOnce.Do(func() {
		ds, err := acquisition.Acquire(acquisition.Options{Seed: 42, Events: testEvents()},
			workloads.Active(), []int{2000, 2400})
		if err != nil {
			fixErr = err
			return
		}
		fixRows = ds.Rows
		fixModel, fixErr = core.Train(ds.Rows, testEvents(), core.TrainOptions{})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixModel, fixRows
}

// newTestServer builds a Server over one registered model named "m"
// plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	m, _ := fixture(t)
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
		if _, err := cfg.Registry.Add("m", m); err != nil {
			t.Fatal(err)
		}
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// sampleLine renders row r as one NDJSON input line at the given
// timestamp.
func sampleLine(t *testing.T, r *acquisition.Row, timeNs uint64) string {
	t.Helper()
	rates := make(map[string]float64, len(r.Rates))
	for id, v := range r.Rates {
		rates[pmu.Lookup(id).Name] = v
	}
	b, err := json.Marshal(wireSample{TimeNs: timeNs, FreqMHz: float64(r.FreqMHz), VoltageV: r.VoltageV, Rates: rates})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// mutatedLine renders row r with one event's rate overridden.
func mutatedLine(t *testing.T, r *acquisition.Row, timeNs uint64, short string, rate float64) string {
	t.Helper()
	clone := &acquisition.Row{FreqMHz: r.FreqMHz, VoltageV: r.VoltageV,
		Rates: make(map[pmu.EventID]float64, len(r.Rates))}
	for id, v := range r.Rates {
		clone.Rates[id] = v
	}
	clone.Rates[pmu.MustByName(short).ID] = rate
	return sampleLine(t, clone, timeNs)
}

// counterSample is the direct-API equivalent of sampleLine.
func counterSample(r *acquisition.Row, timeNs uint64) core.CounterSample {
	rates := make(map[pmu.EventID]float64, len(r.Rates))
	for id, v := range r.Rates {
		rates[id] = v
	}
	return core.CounterSample{TimeNs: timeNs, FreqMHz: r.FreqMHz, VoltageV: r.VoltageV, Rates: rates}
}

// streamEstimates POSTs the lines as one NDJSON request and decodes
// every response line.
func streamEstimates(t *testing.T, ts *httptest.Server, query string, lines []string) (int, []wireEstimate, []wireError) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/estimate"+query, "application/x-ndjson",
		strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var ests []wireEstimate
	var errs []wireError
	if resp.StatusCode != http.StatusOK {
		// Error responses are indented JSON documents, not NDJSON.
		return resp.StatusCode, nil, nil
	}
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if bytes.Contains(line, []byte(`"error"`)) {
			var we wireError
			if err := json.Unmarshal(line, &we); err != nil {
				t.Fatalf("bad error line %q: %v", line, err)
			}
			errs = append(errs, we)
			continue
		}
		var e wireEstimate
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad estimate line %q: %v", line, err)
		}
		ests = append(ests, e)
	}
	return resp.StatusCode, ests, errs
}

// --- plumbing endpoints ----------------------------------------------

func TestHealthAndModels(t *testing.T) {
	m, _ := fixture(t)
	reg := NewRegistry()
	if _, err := reg.Add("m", m); err != nil {
		t.Fatal(err)
	}
	if v, err := reg.Add("m", m); err != nil || v != 2 {
		t.Fatalf("redeploy version = %d, %v", v, err)
	}
	_, ts := newTestServer(t, Config{Registry: reg})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 {
		t.Fatalf("models listed = %d, want 2 versions", len(infos))
	}
	if infos[0].Version != 1 || infos[0].Latest || !infos[1].Latest {
		t.Fatalf("version flags wrong: %+v", infos)
	}
	if len(infos[0].Events) != 6 || infos[0].Estimator != "HC3" {
		t.Fatalf("model info incomplete: %+v", infos[0])
	}

	// Version pinning resolves distinct keys.
	for _, key := range []string{"m", "m@1", "m@2"} {
		if _, err := reg.Get(key); err != nil {
			t.Fatalf("Get(%q): %v", key, err)
		}
	}
	if _, err := reg.Get("m@3"); err == nil {
		t.Fatal("absent version must not resolve")
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Fatal("unknown name must not resolve")
	}
}

func TestPredictBatchBitIdentical(t *testing.T) {
	m, rows := fixture(t)
	_, ts := newTestServer(t, Config{})

	var req predictRequest
	req.Model = "m"
	want := make([]float64, 0, 20)
	for _, r := range rows[:20] {
		rates := make(map[string]float64, len(r.Rates))
		for id, v := range r.Rates {
			rates[pmu.Lookup(id).Name] = v
		}
		req.Rows = append(req.Rows, wireRow{FreqMHz: float64(r.FreqMHz), VoltageV: r.VoltageV, Rates: rates})
		want = append(want, m.Predict(r))
	}
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("predict = %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.N != 20 || len(pr.Watts) != 20 {
		t.Fatalf("predict returned %d/%d watts", pr.N, len(pr.Watts))
	}
	for i := range want {
		if pr.Watts[i] != want[i] {
			t.Fatalf("row %d: served %v, direct %v (must be bit-identical)", i, pr.Watts[i], want[i])
		}
	}
}

func TestPredictRejectsInvalidRows(t *testing.T) {
	_, rows := fixture(t)
	s, ts := newTestServer(t, Config{})
	r0 := rows[0]
	goodRates := func() map[string]float64 {
		rates := make(map[string]float64, len(r0.Rates))
		for id, v := range r0.Rates {
			rates[pmu.Lookup(id).Name] = v
		}
		return rates
	}

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	check := func(resp *http.Response, status int, reason string) {
		t.Helper()
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != status {
			t.Fatalf("status = %d, want %d: %s", resp.StatusCode, status, body)
		}
		if reason != "" && !strings.Contains(string(body), fmt.Sprintf("%q", reason)) {
			t.Fatalf("response %s lacks reason %q", body, reason)
		}
	}

	mk := func(mut func(*wireRow)) string {
		row := wireRow{FreqMHz: float64(r0.FreqMHz), VoltageV: r0.VoltageV, Rates: goodRates()}
		mut(&row)
		b, _ := json.Marshal(predictRequest{Model: "m", Rows: []wireRow{row}})
		return string(b)
	}

	// rawFreq swaps a verbatim frequency token into an otherwise valid
	// request, for values encoding/json cannot round-trip (NaN, Inf).
	rawFreq := func(freq string) string {
		return strings.Replace(mk(func(*wireRow) {}),
			fmt.Sprintf(`"freq_mhz":%v`, r0.FreqMHz), `"freq_mhz":`+freq, 1)
	}

	check(post(`{not json`), 400, ReasonParse)
	check(post(`{"model":"ghost","rows":[{}]}`), 404, "")
	check(post(mk(func(w *wireRow) { w.FreqMHz = -1 })), 400, ReasonBadOperPt)
	check(post(mk(func(w *wireRow) { w.Rates["PAPI_TOT_CYC"] = -5 })), 400, ReasonBadRate)
	check(post(mk(func(w *wireRow) { delete(w.Rates, "PAPI_TOT_CYC") })), 400, ReasonMissingEv)
	check(post(mk(func(w *wireRow) { w.Rates["PAPI_NOPE"] = 1 })), 400, ReasonUnknownEv)
	// Non-finite and non-integral frequencies: NaN passed the seed's
	// `FreqMHz <= 0` check as false and 2400.5 silently truncated while
	// the field was an int on the wire. NaN/Inf literals are invalid
	// JSON (parse); finite garbage must be a bad operating point.
	check(post(rawFreq("NaN")), 400, ReasonParse)
	check(post(rawFreq("-Infinity")), 400, ReasonParse)
	check(post(rawFreq("1e308")), 400, ReasonBadOperPt)
	check(post(rawFreq("2400.5")), 400, ReasonBadOperPt)
	check(post(rawFreq("0")), 400, ReasonBadOperPt)

	if got := s.Metrics().Rejected(ReasonBadRate); got != 1 {
		t.Fatalf("bad_rate rejects = %d, want 1", got)
	}
}

// --- streaming estimation --------------------------------------------

// TestEstimateStreamBitIdentical: one client streams 40 samples; every
// served instant/smoothed watt and cumulative joule must equal driving
// the OnlineEstimator and EnergyAccountant directly, bit for bit.
func TestEstimateStreamBitIdentical(t *testing.T) {
	m, rows := fixture(t)
	_, ts := newTestServer(t, Config{})

	const alpha = 0.3
	var lines []string
	est, err := core.NewOnlineEstimator(m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := core.NewEnergyAccountant(m)
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		inst, smooth, joules float64
	}
	var want []ref
	for i, r := range rows[:40] {
		tns := uint64(i) * 50_000_000
		lines = append(lines, sampleLine(t, r, tns))
		e, err := est.Push(counterSample(r, tns))
		if err != nil {
			t.Fatal(err)
		}
		j, err := acct.Push(counterSample(r, tns))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ref{inst: e.InstantW, smooth: e.SmoothedW, joules: j})
	}

	status, ests, errLines := streamEstimates(t, ts, "?model=m&session=c1&alpha=0.3", lines)
	if status != 200 || len(errLines) != 0 {
		t.Fatalf("stream = %d, errors %v", status, errLines)
	}
	if len(ests) != len(want) {
		t.Fatalf("served %d estimates for %d samples", len(ests), len(want))
	}
	for i, e := range ests {
		if e.InstantW != want[i].inst || e.SmoothedW != want[i].smooth || e.TotalJ != want[i].joules {
			t.Fatalf("sample %d: served (%v, %v, %v) direct (%v, %v, %v) — must be bit-identical",
				i, e.InstantW, e.SmoothedW, e.TotalJ, want[i].inst, want[i].smooth, want[i].joules)
		}
		if e.Samples != uint64(i+1) {
			t.Fatalf("sample %d: counter %d", i, e.Samples)
		}
	}
}

// TestEstimateConcurrentClients drives 10 sessions at once (run under
// -race): each client's stream must match its own direct reference
// exactly — no cross-session state bleed, no torn EWMA updates.
func TestEstimateConcurrentClients(t *testing.T) {
	m, rows := fixture(t)
	s, ts := newTestServer(t, Config{})

	const clients = 10
	const perClient = 30
	alphas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			alpha := alphas[c]
			// Each client walks a distinct slice of the dataset.
			est, err := core.NewOnlineEstimator(m, alpha)
			if err != nil {
				errs <- err
				return
			}
			acct, err := core.NewEnergyAccountant(m)
			if err != nil {
				errs <- err
				return
			}
			var lines []string
			type ref struct{ inst, smooth, joules float64 }
			var want []ref
			for i := 0; i < perClient; i++ {
				r := rows[(c*perClient+i)%len(rows)]
				tns := uint64(i) * 100_000_000
				lines = append(lines, sampleLine(t, r, tns))
				e, err := est.Push(counterSample(r, tns))
				if err != nil {
					errs <- err
					return
				}
				j, err := acct.Push(counterSample(r, tns))
				if err != nil {
					errs <- err
					return
				}
				want = append(want, ref{e.InstantW, e.SmoothedW, j})
			}
			q := fmt.Sprintf("?model=m&session=client%d&alpha=%v", c, alpha)
			status, ests, errLines := streamEstimates(t, ts, q, lines)
			if status != 200 || len(errLines) != 0 {
				errs <- fmt.Errorf("client %d: status %d, errors %v", c, status, errLines)
				return
			}
			if len(ests) != len(want) {
				errs <- fmt.Errorf("client %d: %d estimates for %d samples", c, len(ests), len(want))
				return
			}
			for i, e := range ests {
				if e.InstantW != want[i].inst || e.SmoothedW != want[i].smooth || e.TotalJ != want[i].joules {
					errs <- fmt.Errorf("client %d sample %d: served (%v,%v,%v) direct (%v,%v,%v)",
						c, i, e.InstantW, e.SmoothedW, e.TotalJ, want[i].inst, want[i].smooth, want[i].joules)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.ActiveSessions(); got != clients {
		t.Fatalf("active sessions = %d, want %d", got, clients)
	}
}

// TestEstimateRejectsMalformedSamples: invalid samples are refused at
// the HTTP boundary with 4xx and a per-reason metrics increment, and
// the session state is not poisoned — later valid samples produce the
// same estimates as if the bad ones had never been sent.
func TestEstimateRejectsMalformedSamples(t *testing.T) {
	m, rows := fixture(t)
	s, ts := newTestServer(t, Config{})
	r0, r1 := rows[0], rows[1]

	post := func(query, line string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/estimate"+query, "application/x-ndjson", strings.NewReader(line+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Unknown model and bad alpha are refused outright.
	if got := post("?model=ghost", sampleLine(t, r0, 0)); got != 404 {
		t.Fatalf("unknown model = %d, want 404", got)
	}
	if got := post("?model=m&alpha=2", sampleLine(t, r0, 0)); got != 400 {
		t.Fatalf("bad alpha = %d, want 400", got)
	}

	// NaN rate: JSON cannot carry NaN, so it arrives as a parse error.
	nan := strings.Replace(sampleLine(t, r0, 0), `"voltage_v"`, `"rates":{"PAPI_TOT_CYC":NaN},"voltage_v"`, 1)
	if got := post("?model=m&session=bad1", nan); got != 400 {
		t.Fatalf("NaN rate = %d, want 400", got)
	}
	// Negative rate reaches the estimator's validation.
	neg := mutatedLine(t, r0, 0, "TOT_CYC", -1)
	if got := post("?model=m&session=bad2", neg); got != 400 {
		t.Fatalf("negative rate = %d, want 400", got)
	}
	if got := s.Metrics().Rejected(ReasonBadRate); got != 1 {
		t.Fatalf("bad_rate rejects = %d, want 1", got)
	}

	// Missing model event.
	missing := sampleLine(t, &acquisition.Row{FreqMHz: r0.FreqMHz, VoltageV: r0.VoltageV,
		Rates: map[pmu.EventID]float64{pmu.MustByName("TOT_CYC").ID: 1e9}}, 0)
	if got := post("?model=m&session=bad3", missing); got != 400 {
		t.Fatalf("missing event = %d, want 400", got)
	}
	if got := s.Metrics().Rejected(ReasonMissingEv); got != 1 {
		t.Fatalf("missing_event rejects = %d, want 1", got)
	}

	// Out-of-order: a named session accepts t=1000, then a second
	// request at t=10 is refused with 400 — and the state survives
	// unpoisoned: t=2000 continues exactly as a direct estimator that
	// saw only the valid samples.
	const sid = "?model=m&session=ooo&alpha=0.5"
	status, ests, _ := streamEstimates(t, ts, sid, []string{sampleLine(t, r0, 1000)})
	if status != 200 || len(ests) != 1 {
		t.Fatalf("first sample: %d, %d estimates", status, len(ests))
	}
	if got := post(sid, sampleLine(t, r1, 10)); got != 400 {
		t.Fatalf("out-of-order = %d, want 400", got)
	}
	if got := s.Metrics().Rejected(ReasonOutOfOrder); got != 1 {
		t.Fatalf("out_of_order rejects = %d, want 1", got)
	}
	status, ests, _ = streamEstimates(t, ts, sid, []string{sampleLine(t, r1, 2000)})
	if status != 200 || len(ests) != 1 {
		t.Fatalf("resumed sample: %d, %d estimates", status, len(ests))
	}
	est, _ := core.NewOnlineEstimator(m, 0.5)
	acct, _ := core.NewEnergyAccountant(m)
	est.Push(counterSample(r0, 1000))
	acct.Push(counterSample(r0, 1000))
	e2, _ := est.Push(counterSample(r1, 2000))
	j2, _ := acct.Push(counterSample(r1, 2000))
	if ests[0].SmoothedW != e2.SmoothedW || ests[0].TotalJ != j2 || ests[0].Samples != 2 {
		t.Fatalf("session state poisoned: served (%v, %v, %d) direct (%v, %v, 2)",
			ests[0].SmoothedW, ests[0].TotalJ, ests[0].Samples, e2.SmoothedW, j2)
	}

	// Mid-stream rejection: valid, invalid, valid in one request →
	// 200, one error record, and the bad sample invisible to state.
	status, ests, errLines := streamEstimates(t, ts, "?model=m&session=mid", []string{
		sampleLine(t, r0, 100),
		mutatedLine(t, r0, 150, "TOT_CYC", -1),
		sampleLine(t, r1, 200),
	})
	if status != 200 || len(ests) != 2 || len(errLines) != 1 {
		t.Fatalf("mid-stream: %d, %d estimates, %d errors", status, len(ests), len(errLines))
	}
	if errLines[0].Reason != ReasonBadRate {
		t.Fatalf("mid-stream reason = %q", errLines[0].Reason)
	}
	if ests[1].Samples != 2 {
		t.Fatal("rejected mid-stream sample must not advance the counter")
	}

	// The /metrics exposition carries the reject counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`pmcpowerd_samples_rejected_total{reason="out_of_order"} 1`,
		`pmcpowerd_samples_rejected_total{reason="bad_rate"} 2`,
		`pmcpowerd_samples_rejected_total{reason="missing_event"} 1`,
		`pmcpowerd_requests_total{path="/v1/estimate"}`,
		"pmcpowerd_estimate_latency_seconds_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}
}

// TestSessionEviction: idle sessions die after the TTL; a re-used id
// then starts from fresh state.
func TestSessionEviction(t *testing.T) {
	_, rows := fixture(t)
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	s, ts := newTestServer(t, Config{IdleTTL: time.Minute, Now: clock})

	status, ests, _ := streamEstimates(t, ts, "?model=m&session=ev", []string{sampleLine(t, rows[0], 5000)})
	if status != 200 || len(ests) != 1 {
		t.Fatalf("seed sample: %d", status)
	}
	if s.ActiveSessions() != 1 {
		t.Fatalf("active = %d, want 1", s.ActiveSessions())
	}

	// Under the TTL nothing is evicted.
	advance(30 * time.Second)
	if n := s.SweepIdleSessions(); n != 0 || s.ActiveSessions() != 1 {
		t.Fatalf("early sweep evicted %d", n)
	}
	// Past the TTL the session goes away.
	advance(45 * time.Second)
	if n := s.SweepIdleSessions(); n != 1 || s.ActiveSessions() != 0 {
		t.Fatalf("sweep evicted %d, active %d", n, s.ActiveSessions())
	}

	// Same id now starts fresh: an older timestamp is accepted and the
	// sample counter restarts.
	status, ests, _ = streamEstimates(t, ts, "?model=m&session=ev", []string{sampleLine(t, rows[1], 100)})
	if status != 200 || len(ests) != 1 {
		t.Fatalf("post-eviction sample: %d", status)
	}
	if ests[0].Samples != 1 {
		t.Fatalf("evicted session kept state: counter %d", ests[0].Samples)
	}
}

// TestSessionBackpressure: the session cap returns 429; a second
// stream on a busy session returns 409; an alpha mismatch on reopen
// returns 400.
func TestSessionBackpressure(t *testing.T) {
	_, rows := fixture(t)
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	line := sampleLine(t, rows[0], 0)

	open := func(id string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/estimate?model=m&session="+id, "application/x-ndjson",
			strings.NewReader(line+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := open("s1"); got != 200 {
		t.Fatalf("s1 = %d", got)
	}
	if got := open("s2"); got != 200 {
		t.Fatalf("s2 = %d", got)
	}
	if got := open("s3"); got != 429 {
		t.Fatalf("session over cap = %d, want 429", got)
	}
	if got := s.Metrics().Rejected(ReasonSessionCap); got != 1 {
		t.Fatalf("session_limit rejects = %d, want 1", got)
	}

	// Alpha mismatch on an existing session.
	resp, err := http.Post(ts.URL+"/v1/estimate?model=m&session=s1&alpha=0.25", "application/x-ndjson",
		strings.NewReader(line+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("alpha mismatch = %d, want 400", resp.StatusCode)
	}

	// A second concurrent stream on a busy session: hold s1 open with
	// a pipe, then try to attach again.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate?model=m&session=s1", pr)
	if err != nil {
		t.Fatal(err)
	}
	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			respc <- nil
			return
		}
		respc <- resp
	}()
	if _, err := io.WriteString(pw, sampleLine(t, rows[1], 1_000_000_000)+"\n"); err != nil {
		t.Fatal(err)
	}
	held := <-respc
	if held == nil {
		t.Fatal("held stream failed")
	}
	// The first estimate line proves the stream is attached.
	br := bufio.NewReader(held.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	if got := open("s1"); got != 409 {
		t.Fatalf("busy session = %d, want 409", got)
	}
	if got := s.Metrics().Rejected(ReasonSessionBusy); got != 1 {
		t.Fatalf("session_busy rejects = %d, want 1", got)
	}
	pw.Close()
	io.Copy(io.Discard, br)
	held.Body.Close()
}

// TestAnonymousStreamAndLimits: sessionless streams work and leave no
// state behind; oversized lines are rejected with their own reason.
func TestAnonymousStreamAndLimits(t *testing.T) {
	_, rows := fixture(t)
	s, ts := newTestServer(t, Config{MaxLineBytes: 256})

	// Pad a line past the cap: the raw line length is what the scanner
	// bounds, so trailing whitespace counts.
	oversized := sampleLine(t, rows[0], 0) + strings.Repeat(" ", 512)
	status, ests, _ := streamEstimates(t, ts, "?model=m", []string{oversized})
	if status != 400 {
		t.Fatalf("oversized line = %d (%d estimates), want 400", status, len(ests))
	}
	if got := s.Metrics().Rejected(ReasonOversized); got != 1 {
		t.Fatalf("oversized rejects = %d, want 1", got)
	}

	// A compact synthetic sample fits the cap and streams fine without
	// a session.
	small := &acquisition.Row{FreqMHz: 2400, VoltageV: 1.0,
		Rates: map[pmu.EventID]float64{}}
	for _, id := range testEvents() {
		small.Rates[id] = 1e8
	}
	line := sampleLine(t, small, 0)
	if len(line) >= 256 {
		t.Fatalf("synthetic line too long for the test cap: %d bytes", len(line))
	}
	status, ests, errLines := streamEstimates(t, ts, "?model=m", []string{line})
	if status != 200 || len(ests) != 1 || len(errLines) != 0 {
		t.Fatalf("anonymous stream: %d, %d estimates, %v", status, len(ests), errLines)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("anonymous stream left %d sessions", got)
	}

	// An empty body is a 200 with zeroed totals, not a hang or a 500.
	resp, err := http.Post(ts.URL+"/v1/estimate?model=m", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"samples": 0`) {
		t.Fatalf("empty body = %d %s", resp.StatusCode, body)
	}
}

func TestPredictMalformedBodiesNeverCrash(t *testing.T) {
	// Regression guard for the panic-free contract of the predict
	// handler: every conceivable malformed body must come back as a
	// clean 4xx — never a 5xx from a recovered panic — and the server
	// must stay serviceable afterwards. The underlying numeric layer
	// enforces the same contract (stats.OLSResult.Predict returns an
	// error on shape mismatch instead of panicking).
	_, rows := fixture(t)
	_, ts := newTestServer(t, Config{})

	bodies := []string{
		``,              // empty body
		`null`,          // JSON null decodes to a zero request
		`42`,            // wrong top-level type
		`{"model":"m"}`, // no rows at all
		`{"model":"m","rows":[]}`,
		`{"model":"m","rows":[{}]}`,   // zero operating point
		`{"model":"m","rows":[null]}`, // null row
		`{"model":"m","rows":[{"freq_mhz":1e999}]}`,                  // float overflow
		`{"model":"m","rows":[{"freq_mhz":2400,"voltage_v":"one"}]}`, // wrong field type
		`{"model":"m","rows":[{"freq_mhz":2400,"voltage_v":1.2}]}`,   // missing every model event
		`{"model":"m","rows":[{"freq_mhz":2400,"voltage_v":1.2,"rates":{"NOT_AN_EVENT":1}}]}`,
		`{"model":"m","extra_field":true,"rows":[{}]}`, // unknown field
		strings.Repeat(`{`, 10000),                     // pathological nesting
	}
	for i, body := range bodies {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("body %d: transport error (connection died — handler panicked?): %v", i, err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Fatalf("body %d: status %d (%s), want 4xx", i, resp.StatusCode, got)
		}
	}

	// The server must still answer a well-formed request.
	r0 := rows[0]
	rates := make(map[string]float64, len(r0.Rates))
	for id, v := range r0.Rates {
		rates[pmu.Lookup(id).Name] = v
	}
	b, _ := json.Marshal(predictRequest{Model: "m", Rows: []wireRow{{FreqMHz: float64(r0.FreqMHz), VoltageV: r0.VoltageV, Rates: rates}}})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("good request after malformed batch = %d: %s", resp.StatusCode, body)
	}
}
