package serve

import (
	"sync/atomic"
	"time"

	"pmcpower/internal/obs"
)

// Rejection reasons, used both as metric labels and in NDJSON error
// records. They partition every way a sample or request can be
// refused, so operators can tell a misbehaving client (out_of_order,
// missing_event) from a capacity problem (session_limit, busy).
const (
	ReasonParse       = "parse"
	ReasonUnknownEv   = "unknown_event"
	ReasonMissingEv   = "missing_event"
	ReasonBadRate     = "bad_rate"
	ReasonBadOperPt   = "bad_operating_point"
	ReasonOutOfOrder  = "out_of_order"
	ReasonOversized   = "oversized_line"
	ReasonSessionCap  = "session_limit"
	ReasonSessionBusy = "session_busy"
	ReasonBadPower    = "bad_power"
	// Admission-control rejections: the in-flight cap (429) and the
	// p99 latency shed (503).
	ReasonShedInflight = "shed_inflight"
	ReasonShedP99      = "shed_p99"
)

// driftBuckets are watt-scale histogram bounds for the absolute error
// between the served estimate and the measured power reference — the
// drift signal streaming refit exists to shrink. The paper's models
// sit in the 1–5% MAPE band on ~50–200 W nodes, so sub-watt buckets
// resolve a healthy model and the tail flags one that needs refit.
var driftBuckets = []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100}

// Metrics is the pmcpowerd instrument set, backed by the shared
// internal/obs registry (the seed's hand-rolled render loop is gone):
// request counters and latency histograms by path, rejected samples
// by reason, accepted-estimate counters with a push-latency
// histogram, and session lifecycle counters. Gauges whose value lives
// elsewhere (active sessions, registered models) are attached by the
// Server as GaugeFuncs on the same registry. Rendering is the
// registry's: families and label sets in canonical sorted order,
// byte-stable across runs.
type Metrics struct {
	reg *obs.Registry

	estimates       *obs.Counter
	evictions       *obs.Counter
	sessionsCreated *obs.Counter
	estimateLatency *obs.StripedHistogram
	refitSamples    *obs.Counter
	refits          *obs.Counter
	refitRebuilds   *obs.Counter
	refitDrift      *obs.Histogram
	totalRequests   atomic.Uint64
}

// NewMetrics returns the instrument set registered on reg (the
// process default when nil). Registration is idempotent, so a shared
// registry (e.g. obs.Default()) can carry both these and library
// metrics like the parallel engine's task counters.
// The per-sample estimate-latency histogram is striped by session
// shard (stripes is the shard count), so concurrent streams record
// push latency without sharing a lock; the exposition merges stripes
// and stays byte-identical to a single histogram.
func NewMetrics(reg *obs.Registry, stripes int) *Metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &Metrics{
		reg: reg,
		estimates: reg.Counter("pmcpowerd_estimates_total",
			"Accepted streaming samples across all sessions."),
		evictions: reg.Counter("pmcpowerd_sessions_evicted_total",
			"Estimator sessions evicted for idleness."),
		sessionsCreated: reg.Counter("pmcpowerd_sessions_created_total",
			"Named estimator sessions created."),
		estimateLatency: reg.StripedHistogram("pmcpowerd_estimate_latency_seconds",
			"Per-sample estimator push latency.", nil, stripes),
		refitSamples: reg.Counter("pmcpowerd_refit_samples_total",
			"Labelled samples folded into streaming refit windows."),
		refits: reg.Counter("pmcpowerd_refits_total",
			"Streaming coefficient refreshes across all refitting sessions."),
		refitRebuilds: reg.Counter("pmcpowerd_refit_rebuilds_total",
			"Refit-window refactorizations forced by downdate breakdown."),
		refitDrift: reg.Histogram("pmcpowerd_refit_drift_watts",
			"Absolute error of the estimate against the measured power reference, in watts.",
			driftBuckets),
	}
}

// Registry exposes the backing registry (for GaugeFunc attachment and
// the /metrics handler).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// SetBuildInfo publishes the constant pmcpowerd_build_info gauge: the
// value is always 1, the payload is the label set (service version and
// Go runtime), following the Prometheus build-info convention.
func (m *Metrics) SetBuildInfo(version, goVersion string) {
	m.reg.Gauge("pmcpowerd_build_info",
		"Build metadata; constant 1 with version labels.",
		obs.Label{Key: "version", Value: version},
		obs.Label{Key: "goversion", Value: goVersion}).Set(1)
}

// QualityState publishes the drift state for one served model version
// as a numeric gauge (0 ok, 1 warn, 2 alert) so dashboards can alert
// on `pmcpowerd_quality_state >= 2`.
func (m *Metrics) QualityState(model string, state float64) {
	m.reg.Gauge("pmcpowerd_quality_state",
		"Model drift state by served model version (0 ok, 1 warn, 2 alert).",
		obs.Label{Key: "model", Value: model}).Set(state)
}

// QualityTransition counts one drift state change for a model.
func (m *Metrics) QualityTransition(model, to string) {
	m.reg.Counter("pmcpowerd_quality_transitions_total",
		"Drift state transitions by served model version and destination state.",
		obs.Label{Key: "model", Value: model},
		obs.Label{Key: "to", Value: to}).Inc()
}

// SessionsCreated returns the named-session creation count.
func (m *Metrics) SessionsCreated() uint64 { return m.sessionsCreated.Value() }

// Evictions returns the idle-eviction count.
func (m *Metrics) Evictions() uint64 { return m.evictions.Value() }

// Request counts one HTTP request to path.
func (m *Metrics) Request(path string) {
	m.totalRequests.Add(1)
	m.reg.Counter("pmcpowerd_requests_total", "HTTP requests by path.",
		obs.Label{Key: "path", Value: path}).Inc()
}

// RequestLatency records one full-request duration for path.
func (m *Metrics) RequestLatency(path string, d time.Duration) {
	m.reg.Histogram("pmcpowerd_request_seconds", "HTTP request latency by path.",
		nil, obs.Label{Key: "path", Value: path}).Observe(d.Seconds())
}

// RequestLatencyExemplar records one full-request duration for path
// and stamps the request's trace id as the landing bucket's exemplar,
// so a latency bucket on /debug/requests links to a concrete trace.
func (m *Metrics) RequestLatencyExemplar(path string, d time.Duration, traceID string) {
	m.reg.Histogram("pmcpowerd_request_seconds", "HTTP request latency by path.",
		nil, obs.Label{Key: "path", Value: path}).ObserveExemplar(d.Seconds(), traceID)
}

// LatencyExemplars returns the trace-id exemplars currently attached
// to path's request-latency histogram buckets.
func (m *Metrics) LatencyExemplars(path string) []obs.BucketExemplar {
	return m.reg.Histogram("pmcpowerd_request_seconds", "HTTP request latency by path.",
		nil, obs.Label{Key: "path", Value: path}).Exemplars()
}

// Reject counts one rejected sample or refused request under reason.
func (m *Metrics) Reject(reason string) {
	m.reg.Counter("pmcpowerd_samples_rejected_total", "Rejected samples and refused requests by reason.",
		obs.Label{Key: "reason", Value: reason}).Inc()
}

// Rejected returns the current count for reason.
func (m *Metrics) Rejected(reason string) uint64 {
	return m.reg.Counter("pmcpowerd_samples_rejected_total", "Rejected samples and refused requests by reason.",
		obs.Label{Key: "reason", Value: reason}).Value()
}

// Estimate records one accepted sample and its push latency on the
// given histogram stripe (the observing session's shard index, so
// streams on different shards never contend on one histogram lock).
func (m *Metrics) Estimate(stripe int, d time.Duration) {
	m.estimates.Inc()
	m.estimateLatency.Observe(stripe, d.Seconds())
}

// EstimateLatencyQuantile estimates the q-quantile of the per-sample
// push-latency distribution, merged across stripes.
func (m *Metrics) EstimateLatencyQuantile(q float64) (float64, bool) {
	return m.estimateLatency.Quantile(q)
}

// Shed counts one request shed by admission control on path for
// reason (shed_inflight or shed_p99).
func (m *Metrics) Shed(path, reason string) {
	m.reg.Counter("pmcpowerd_shed_total",
		"Requests shed by admission control, by path and reason.",
		obs.Label{Key: "path", Value: path},
		obs.Label{Key: "reason", Value: reason}).Inc()
}

// ShedCount returns the shed counter for one (path, reason) pair.
func (m *Metrics) ShedCount(path, reason string) uint64 {
	return m.reg.Counter("pmcpowerd_shed_total",
		"Requests shed by admission control, by path and reason.",
		obs.Label{Key: "path", Value: path},
		obs.Label{Key: "reason", Value: reason}).Value()
}

// SetShedState publishes the admission gate's latency EWMA and
// current shed decision as gauges.
func (m *Metrics) SetShedState(p99EwmaS float64, shedding bool) {
	m.reg.Gauge("pmcpowerd_shed_p99_ewma_seconds",
		"EWMA of the p99 latency over recent estimate/predict requests.").Set(p99EwmaS)
	v := 0.0
	if shedding {
		v = 1
	}
	m.reg.Gauge("pmcpowerd_shedding",
		"1 while p99 load shedding is active, else 0.").Set(v)
}

// requestLatencySnapshot returns a consistent snapshot of path's
// request-latency histogram — the admission gate's p99 feed.
func (m *Metrics) requestLatencySnapshot(path string) obs.HistogramSnapshot {
	return m.reg.Histogram("pmcpowerd_request_seconds", "HTTP request latency by path.",
		nil, obs.Label{Key: "path", Value: path}).Snapshot()
}

// RefitSample records one labelled sample folded into a refit window,
// with the drift (|estimate − measured|, watts) it observed.
func (m *Metrics) RefitSample(driftW float64) {
	m.refitSamples.Inc()
	m.refitDrift.Observe(driftW)
}

// Refits counts n streaming coefficient refreshes.
func (m *Metrics) Refits(n uint64) { m.refits.Add(n) }

// RefitRebuilds counts n downdate-breakdown refactorizations.
func (m *Metrics) RefitRebuilds(n uint64) { m.refitRebuilds.Add(n) }

// RefitSamples returns the labelled-sample count (for tests).
func (m *Metrics) RefitSamples() uint64 { return m.refitSamples.Value() }

// RefitCount returns the refresh count (for tests).
func (m *Metrics) RefitCount() uint64 { return m.refits.Value() }

// Eviction counts one idle-session eviction.
func (m *Metrics) Eviction() { m.evictions.Inc() }

// SessionCreated counts one named-session creation.
func (m *Metrics) SessionCreated() { m.sessionsCreated.Inc() }

// TotalRequests returns the number of requests counted across all
// paths — pmcpowerd's shutdown log reports it as "requests served".
func (m *Metrics) TotalRequests() uint64 { return m.totalRequests.Load() }

// Render returns the full exposition (all families on the backing
// registry) in canonical byte-stable order.
func (m *Metrics) Render() string { return m.reg.Render() }
