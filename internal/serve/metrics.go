package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Rejection reasons, used both as metric labels and in NDJSON error
// records. They partition every way a sample or request can be
// refused, so operators can tell a misbehaving client (out_of_order,
// missing_event) from a capacity problem (session_limit, busy).
const (
	ReasonParse       = "parse"
	ReasonUnknownEv   = "unknown_event"
	ReasonMissingEv   = "missing_event"
	ReasonBadRate     = "bad_rate"
	ReasonBadOperPt   = "bad_operating_point"
	ReasonOutOfOrder  = "out_of_order"
	ReasonOversized   = "oversized_line"
	ReasonSessionCap  = "session_limit"
	ReasonSessionBusy = "session_busy"
)

// Metrics aggregates the service counters exposed at /metrics:
// request counts by path, rejected samples by reason, accepted
// estimates, and estimate latency (count/sum/max). Active-session
// count is sampled from the session table at render time.
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64
	rejected  map[string]uint64
	estimates uint64
	latCount  uint64
	latSumNs  uint64
	latMaxNs  uint64
	evictions uint64
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	return &Metrics{requests: make(map[string]uint64), rejected: make(map[string]uint64)}
}

// Request counts one HTTP request to path.
func (m *Metrics) Request(path string) {
	m.mu.Lock()
	m.requests[path]++
	m.mu.Unlock()
}

// Reject counts one rejected sample or refused request under reason.
func (m *Metrics) Reject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// Rejected returns the current count for reason.
func (m *Metrics) Rejected(reason string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected[reason]
}

// Estimate records one accepted sample and its push latency.
func (m *Metrics) Estimate(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	m.mu.Lock()
	m.estimates++
	m.latCount++
	m.latSumNs += ns
	if ns > m.latMaxNs {
		m.latMaxNs = ns
	}
	m.mu.Unlock()
}

// Eviction counts one idle-session eviction.
func (m *Metrics) Eviction() {
	m.mu.Lock()
	m.evictions++
	m.mu.Unlock()
}

// Render writes the text exposition format. activeSessions is sampled
// by the caller (the session manager owns that number). Lines are
// sorted so the output is deterministic.
func (m *Metrics) Render(activeSessions int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sb strings.Builder
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "pmcpowerd_requests_total{path=%q} %d\n", k, m.requests[k])
	}
	fmt.Fprintf(&sb, "pmcpowerd_sessions_active %d\n", activeSessions)
	fmt.Fprintf(&sb, "pmcpowerd_sessions_evicted_total %d\n", m.evictions)
	keys = keys[:0]
	for k := range m.rejected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "pmcpowerd_samples_rejected_total{reason=%q} %d\n", k, m.rejected[k])
	}
	fmt.Fprintf(&sb, "pmcpowerd_estimates_total %d\n", m.estimates)
	fmt.Fprintf(&sb, "pmcpowerd_estimate_latency_seconds_count %d\n", m.latCount)
	fmt.Fprintf(&sb, "pmcpowerd_estimate_latency_seconds_sum %.9f\n", float64(m.latSumNs)/1e9)
	fmt.Fprintf(&sb, "pmcpowerd_estimate_latency_seconds_max %.9f\n", float64(m.latMaxNs)/1e9)
	return sb.String()
}
