package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/pmu"
)

// --- registry hot swap under live traffic ----------------------------

// TestRegistryHotSwapUnderLiveTraffic races model uploads against live
// NDJSON streams and concurrent registry reads. Run under -race it
// pins the copy-on-write contract: a deploy is atomic (readers see the
// old or the new snapshot, never a torn one), in-flight streams keep
// estimating, and every listing is internally consistent.
func TestRegistryHotSwapUnderLiveTraffic(t *testing.T) {
	m, rows := fixture(t)
	_, ts := newTestServer(t, Config{})

	var doc bytes.Buffer
	if err := m.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	docBytes := doc.Bytes()

	const (
		streamers = 4
		samples   = 40
		uploads   = 20
	)
	bodies := make([]string, streamers)
	for c := 0; c < streamers; c++ {
		var sb strings.Builder
		for i := 0; i < samples; i++ {
			sb.WriteString(sampleLine(t, rows[(c+i)%len(rows)], uint64(i+1)*1e6))
			sb.WriteByte('\n')
		}
		bodies[c] = sb.String()
	}

	errs := make(chan error, streamers+2)
	var wg sync.WaitGroup

	// Uploader: redeploy "m" continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < uploads; i++ {
			resp, err := http.Post(ts.URL+"/v1/models?name=m", "application/json", bytes.NewReader(docBytes))
			if err != nil {
				errs <- fmt.Errorf("upload %d: %w", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("upload %d: HTTP %d", i, resp.StatusCode)
				return
			}
		}
		errs <- nil
	}()

	// Reader: every listing must be internally consistent — exactly one
	// latest version per name, versions contiguous from 1.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			resp, err := http.Get(ts.URL + "/v1/models")
			if err != nil {
				errs <- fmt.Errorf("list %d: %w", i, err)
				return
			}
			var infos []ModelInfo
			err = json.NewDecoder(resp.Body).Decode(&infos)
			resp.Body.Close()
			if err != nil {
				errs <- fmt.Errorf("list %d: %w", i, err)
				return
			}
			latest := 0
			for j, info := range infos {
				if info.Version != j+1 {
					errs <- fmt.Errorf("list %d: torn listing: version %d at index %d", i, info.Version, j)
					return
				}
				if info.Latest {
					latest++
				}
			}
			if len(infos) > 0 && latest != 1 {
				errs <- fmt.Errorf("list %d: %d latest versions, want 1", i, latest)
				return
			}
		}
		errs <- nil
	}()

	// Streamers: every sample must come back as an estimate — a deploy
	// must never break a stream that resolved before it.
	for c := 0; c < streamers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			est, errLines, err := racePost(ts, fmt.Sprintf("?model=m&session=swap-%d", c), bodies[c])
			if err != nil {
				errs <- fmt.Errorf("swap-%d: %w", c, err)
				return
			}
			if errLines != 0 || est != samples {
				errs <- fmt.Errorf("swap-%d: %d estimates, %d errors; want %d, 0", c, est, errLines, samples)
			}
		}(c)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// --- shard equivalence ------------------------------------------------

// equivSpec is one request of the equivalence transcript.
type equivSpec struct {
	method string
	path   string
	body   string
}

// normalizeStatus zeroes the fields of a /v1/status document that
// legitimately depend on the shard layout or wall-clock timing.
func normalizeStatus(t *testing.T, raw []byte) StatusResponse {
	t.Helper()
	var st StatusResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("bad status %q: %v", raw, err)
	}
	st.Sessions.Shards = 0
	st.Sessions.PerShard = nil
	st.Admission.P99EwmaMS = 0
	st.UptimeS = 0
	return st
}

// normalizeMetrics drops exposition lines whose values are wall-clock
// timings (latency histogram buckets and sums); the deterministic
// sample counts (_seconds_count) and every non-timing family must be
// byte-identical across serving modes.
func normalizeMetrics(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.Contains(name, "seconds") && !strings.HasSuffix(name, "_count") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestShardEquivalence drives an identical transcript — streaming
// sessions with labelled refit samples, mid-stream rejections, batch
// prediction, status and metrics reads — through a single-shard
// server, a multi-shard server, and the legacy serving path, and
// requires bit-identical responses. Shard layout is an implementation
// detail; the service contract must not move.
func TestShardEquivalence(t *testing.T) {
	m, rows := fixture(t)
	fixedNow := func() time.Time { return time.Unix(1_700_000_000, 0) }

	newSrv := func(cfg Config) *httptest.Server {
		cfg.Now = fixedNow
		cfg.Registry = NewRegistry()
		if _, err := cfg.Registry.Add("m", m); err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, cfg)
		return ts
	}
	servers := map[string]*httptest.Server{
		"shards1": newSrv(Config{Shards: 1}),
		"shards8": newSrv(Config{Shards: 8}),
		"legacy":  newSrv(Config{LegacyServing: true}),
	}

	stream := func(session string, lines ...string) equivSpec {
		q := "?model=m&refit=32"
		if session != "" {
			q += "&session=" + session
		}
		return equivSpec{method: "POST", path: "/v1/estimate" + q, body: strings.Join(lines, "\n") + "\n"}
	}
	predictBody, err := json.Marshal(predictRequest{Model: "m", Rows: []wireRow{
		rowToWire(rows[0]), rowToWire(rows[1]), rowToWire(rows[2]),
	}})
	if err != nil {
		t.Fatal(err)
	}

	specs := []equivSpec{
		stream("a", sampleLine(t, rows[0], 1e6), labelledLine(t, rows[1], 2e6), sampleLine(t, rows[2], 3e6)),
		stream("b", labelledLine(t, rows[3], 1e6), labelledLine(t, rows[4], 2e6)),
		// Anonymous stream with a mid-stream rejection (unknown event).
		stream("", sampleLine(t, rows[5], 1e6), `{"time_ns":2000000,"freq_mhz":2000,"voltage_v":1.1,"rates":{"NO_SUCH_EV":1}}`, sampleLine(t, rows[6], 3e6)),
		// Out-of-order rejection on a named session's second request.
		stream("a", sampleLine(t, rows[7], 4e6), sampleLine(t, rows[8], 2e6)),
		{method: "POST", path: "/v1/predict", body: string(predictBody)},
		{method: "GET", path: "/v1/models"},
		{method: "GET", path: "/healthz?deep=1"},
	}

	do := func(ts *httptest.Server, spec equivSpec, trace string) (int, []byte) {
		req, err := http.NewRequest(spec.method, ts.URL+spec.path, strings.NewReader(spec.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("traceparent", trace)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, raw
	}

	for i, spec := range specs {
		trace := fmt.Sprintf("00-%032x-%016x-01", i+1, i+1)
		baseStatus, baseBody := do(servers["shards1"], spec, trace)
		for name, ts := range servers {
			if name == "shards1" {
				continue
			}
			status, body := do(ts, spec, trace)
			if status != baseStatus || !bytes.Equal(body, baseBody) {
				t.Errorf("spec %d (%s %s): %s diverges from shards1:\n shards1: %d %q\n %s: %d %q",
					i, spec.method, spec.path, name, baseStatus, baseBody, name, status, body)
			}
		}
	}

	// /v1/status must agree after stripping the shard-layout block.
	_, baseRaw := do(servers["shards1"], equivSpec{method: "GET", path: "/v1/status"}, "00-"+strings.Repeat("a", 32)+"-"+strings.Repeat("b", 16)+"-01")
	base := normalizeStatus(t, baseRaw)
	for name, ts := range servers {
		if name == "shards1" {
			continue // each server must see the transcript exactly once
		}
		_, raw := do(ts, equivSpec{method: "GET", path: "/v1/status"}, "00-"+strings.Repeat("a", 32)+"-"+strings.Repeat("b", 16)+"-01")
		st := normalizeStatus(t, raw)
		if !reflect.DeepEqual(st, base) {
			t.Errorf("status diverges on %s:\n shards1: %+v\n %s: %+v", name, base, name, st)
		}
	}

	// /metrics must agree after dropping wall-clock-valued lines.
	_, baseMetrics := do(servers["shards1"], equivSpec{method: "GET", path: "/metrics"}, "00-"+strings.Repeat("c", 32)+"-"+strings.Repeat("d", 16)+"-01")
	baseNorm := normalizeMetrics(string(baseMetrics))
	for name, ts := range servers {
		if name == "shards1" {
			continue
		}
		_, raw := do(ts, equivSpec{method: "GET", path: "/metrics"}, "00-"+strings.Repeat("c", 32)+"-"+strings.Repeat("d", 16)+"-01")
		if got := normalizeMetrics(string(raw)); got != baseNorm {
			t.Errorf("metrics diverge on %s:\n--- shards1 ---\n%s\n--- %s ---\n%s", name, baseNorm, name, got)
		}
	}
}

func rowToWire(r *acquisition.Row) wireRow {
	rates := make(map[string]float64, len(r.Rates))
	for id, v := range r.Rates {
		rates[pmu.Lookup(id).Name] = v
	}
	return wireRow{FreqMHz: float64(r.FreqMHz), VoltageV: r.VoltageV, Rates: rates}
}

// --- sweep eviction outside the critical section ----------------------

// TestSweepEvictsOutsideShardLock pins the collect-then-close sweep
// contract: per-session teardown (the evictHook seam) runs with the
// shard lock released, so a slow teardown cannot stall acquire/release
// traffic on the same shard.
func TestSweepEvictsOutsideShardLock(t *testing.T) {
	model, _ := fixture(t)
	clock := newRaceClock()
	const ttl = 10 * time.Millisecond
	// One shard: the evicted key and the live key share it by
	// construction, which is the worst case the contract covers.
	sm := newSessionManager(1, 64, ttl, clock.Now, NewMetrics(nil, 1), 0)

	hookEntered := make(chan struct{})
	hookRelease := make(chan struct{})
	sm.evictHook = func(sessionKey, *session) {
		close(hookEntered)
		<-hookRelease
	}

	idle := sessionKey{model: "m", id: "idle"}
	if _, herr := sm.acquire(idle, model, 0.5, 0); herr != nil {
		t.Fatal(herr.err)
	}
	sm.release(idle)
	clock.Advance(2 * ttl)

	sweepDone := make(chan int)
	go func() { sweepDone <- sm.sweep(clock.Now()) }()
	<-hookEntered // the sweep is now parked in teardown

	// With the hook blocked, same-shard traffic must still flow.
	acquired := make(chan struct{})
	go func() {
		live := sessionKey{model: "m", id: "live"}
		if _, herr := sm.acquire(live, model, 0.5, 0); herr != nil {
			t.Errorf("acquire during blocked teardown: %v", herr.err)
		} else {
			sm.release(live)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("acquire blocked behind an in-progress eviction teardown")
	}

	close(hookRelease)
	if n := <-sweepDone; n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
}

// --- allocation gate --------------------------------------------------

// TestEstimateSampleZeroAllocs gates the serving core's steady state:
// once a session exists, pushing a sample through the full serving
// path (admission, registry resolution, session bookkeeping, metrics)
// must not allocate.
func TestEstimateSampleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	_, rows := fixture(t)
	s := New(Config{Registry: func() *Registry {
		m, _ := fixture(t)
		r := NewRegistry()
		r.Add("m", m)
		return r
	}()})
	defer s.Close()

	cs := counterSample(rows[0], 0)
	var timeNs uint64
	push := func() {
		timeNs += 1e6
		cs.TimeNs = timeNs
		if _, err := s.EstimateSample("m", "gate", cs); err != nil {
			t.Fatal(err)
		}
	}
	push() // create the session outside the measured window
	if allocs := testing.AllocsPerRun(1000, push); allocs != 0 {
		t.Fatalf("EstimateSample steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// --- body caps --------------------------------------------------------

func TestPredictBodyCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	body := `{"model":"m","rows":[` + strings.Repeat(`{"freq_mhz":2000,"voltage_v":1.1,"rates":{}},`, 64)
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized predict body: HTTP %d %q, want 413", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), ReasonOversized) {
		t.Fatalf("413 body %q does not carry reason %q", raw, ReasonOversized)
	}
}

func TestModelUploadBodyCap(t *testing.T) {
	m, _ := fixture(t)
	s, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	// A well-formed model document larger than the cap: the 413 must
	// come from the byte limit, not from a parse failure.
	var doc bytes.Buffer
	if err := m.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Len() <= 128 {
		t.Fatalf("fixture document is %d bytes; cap test needs > 128", doc.Len())
	}
	resp, err := http.Post(ts.URL+"/v1/models?name=big", "application/json", &doc)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized model upload: HTTP %d %q, want 413", resp.StatusCode, raw)
	}
	if got := s.Metrics().Rejected(ReasonOversized); got == 0 {
		t.Fatal("oversized upload not counted under the oversized reason")
	}
}

// --- admission control ------------------------------------------------

// TestAdmissionInFlightCap holds one estimate stream open and requires
// the next gated request to shed with 429 + Retry-After, then pass
// again once the stream completes.
func TestAdmissionInFlightCap(t *testing.T) {
	m, rows := fixture(t)
	reg := NewRegistry()
	if _, err := reg.Add("m", m); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Registry: reg, MaxInFlight: 1, RetryAfter: 2 * time.Second})

	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/estimate?model=m&session=held", "application/x-ndjson", pr)
		if err != nil {
			done <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	// First sample proves the stream is admitted and in flight.
	if _, err := io.WriteString(pw, sampleLine(t, rows[0], 1e6)+"\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.gate.inFlight() == 1 })

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"m","rows":[{"freq_mhz":2000,"voltage_v":1.1,"rates":{}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request: HTTP %d %q, want 429", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}
	if got := s.Metrics().ShedCount("/v1/predict", ReasonShedInflight); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	pw.Close()
	if r := <-done; r.err != nil || r.status != http.StatusOK {
		t.Fatalf("held stream: status %d err %v", r.status, r.err)
	}
	waitFor(t, func() bool { return s.gate.inFlight() == 0 })

	// Capacity restored: the same request is admitted now.
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"m","rows":[{"freq_mhz":2000,"voltage_v":1.1,"rates":{}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("request shed after capacity was restored")
	}
}

// TestAdmissionP99Shed drives the latency EWMA over an absurdly low
// threshold and requires 503 + Retry-After, the shedding gauge, a
// failing deep health probe, and the status block to agree.
func TestAdmissionP99Shed(t *testing.T) {
	_, rows := fixture(t)
	s, ts := newTestServer(t, Config{ShedP99: time.Nanosecond, ShedSampleEvery: 1})

	// Prime the EWMA: any completed request's p99 exceeds 1ns.
	code, _, _ := streamEstimates(t, ts, "?model=m", []string{sampleLine(t, rows[0], 1e6)})
	if code != http.StatusOK {
		t.Fatalf("priming request: HTTP %d", code)
	}
	waitFor(t, func() bool { return s.gate.sheddingNow() })

	resp, err := http.Post(ts.URL+"/v1/estimate?model=m", "application/x-ndjson",
		strings.NewReader(sampleLine(t, rows[1], 1e6)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request under shed: HTTP %d %q, want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !strings.Contains(string(raw), ReasonShedP99) {
		t.Fatalf("shed body %q does not carry reason %q", raw, ReasonShedP99)
	}

	st := s.Status()
	if !st.Admission.Enabled || !st.Admission.Shedding || st.Admission.ShedTotal == 0 {
		t.Fatalf("status admission block %+v does not reflect active shedding", st.Admission)
	}
	if !strings.Contains(s.Metrics().Render(), "pmcpowerd_shedding 1") {
		t.Fatal("pmcpowerd_shedding gauge not raised")
	}

	deep, err := http.Get(ts.URL + "/healthz?deep=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, deep.Body)
	deep.Body.Close()
	if deep.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deep health under shed: HTTP %d, want 503", deep.StatusCode)
	}
}

// TestAdmissionDisabled pins the escape hatch: with both knobs at
// zero, requests carry no Retry-After and the status block reports the
// gate as disabled.
func TestAdmissionDisabled(t *testing.T) {
	_, rows := fixture(t)
	s, ts := newTestServer(t, Config{})
	code, ests, _ := streamEstimates(t, ts, "?model=m", []string{sampleLine(t, rows[0], 1e6)})
	if code != http.StatusOK || len(ests) != 1 {
		t.Fatalf("ungated request: HTTP %d, %d estimates", code, len(ests))
	}
	if st := s.Status(); st.Admission.Enabled || st.Admission.Shedding || st.Admission.ShedTotal != 0 {
		t.Fatalf("admission block %+v, want disabled and idle", st.Admission)
	}
}

// waitFor polls cond with a deadline — for settling asynchronous gate
// state that lags the HTTP response by one middleware epilogue.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}
