package serve

import (
	"bufio"
	"math"
	"strconv"
)

// Fast-path NDJSON estimate encoding.
//
// The estimate response is one fixed-shape object per accepted
// sample; json.Encoder re-walks the struct type for every line. This
// appender emits the identical bytes — field order, float formatting,
// omitempty, trailing newline — without reflection. Identity with
// encoding/json is load-bearing (the shard-equivalence contract test
// compares response bodies against the legacy path byte for byte), so
// anything the appender cannot prove it reproduces exactly — a
// non-finite float, a trace id needing escaping — returns false and
// the caller falls back to json.Encoder.

// appendJSONFloat appends f exactly as encoding/json's floatEncoder
// does: shortest representation, 'f' form within [1e-6, 1e21), 'e'
// form outside it with a single-digit exponent unpadded.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false // json.Encoder errors on these; let it
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9, as encoding/json does
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// jsonSafeString reports whether s encodes as itself between quotes
// under json.Encoder's default HTML-escaping rules (no control
// characters, quotes, backslashes, angle brackets, ampersands, or
// non-ASCII bytes).
func jsonSafeString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// writeEstimateFast writes we's json.Encoder encoding (object plus
// trailing newline) to bw through the reusable *buf, or returns false
// leaving bw untouched so the caller can use the real encoder.
func writeEstimateFast(bw *bufio.Writer, buf *[]byte, we wireEstimate) bool {
	if we.TraceID != "" && !jsonSafeString(we.TraceID) {
		return false
	}
	b := append((*buf)[:0], `{"time_ns":`...)
	b = strconv.AppendUint(b, we.TimeNs, 10)
	b = append(b, `,"instant_w":`...)
	b, ok := appendJSONFloat(b, we.InstantW)
	if !ok {
		return false
	}
	b = append(b, `,"smoothed_w":`...)
	b, ok = appendJSONFloat(b, we.SmoothedW)
	if !ok {
		return false
	}
	b = append(b, `,"total_j":`...)
	b, ok = appendJSONFloat(b, we.TotalJ)
	if !ok {
		return false
	}
	b = append(b, `,"samples":`...)
	b = strconv.AppendUint(b, we.Samples, 10)
	b = append(b, `,"model_version":`...)
	b = strconv.AppendUint(b, we.ModelVersion, 10)
	if we.TraceID != "" {
		b = append(b, `,"trace_id":"`...)
		b = append(b, we.TraceID...)
		b = append(b, '"')
	}
	b = append(b, '}', '\n')
	*buf = b
	bw.Write(b)
	return true
}
