package phasedetect

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/phaseprofile"
	"pmcpower/internal/pmu"
	"pmcpower/internal/rng"
	"pmcpower/internal/trace"
	"pmcpower/internal/workloads"
)

// synth builds a noisy piecewise-constant signal: levels[i] held for
// stepLen samples each, at 10 ms per sample.
func synth(levels []float64, stepLen int, noise float64, seed uint64) []Sample {
	r := rng.New(seed)
	var out []Sample
	t := uint64(0)
	for _, lv := range levels {
		for i := 0; i < stepLen; i++ {
			out = append(out, Sample{TimeNs: t, Value: lv + r.NormScaled(0, noise)})
			t += 10_000_000
		}
	}
	return out
}

func TestDetectCleanSteps(t *testing.T) {
	levels := []float64{60, 120, 90, 200}
	samples := synth(levels, 40, 0.5, 1)
	segs, err := Detect(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(levels) {
		t.Fatalf("detected %d segments, want %d: %+v", len(segs), len(levels), segs)
	}
	for i, seg := range segs {
		if math.Abs(seg.Mean-levels[i]) > 2 {
			t.Fatalf("segment %d mean %.1f, want %.1f", i, seg.Mean, levels[i])
		}
	}
	// Boundaries within a window of the truth (every 400 ms).
	for i := 1; i < len(segs); i++ {
		wantNs := uint64(i) * 40 * 10_000_000
		gotNs := segs[i].StartNs
		if diff := math.Abs(float64(gotNs) - float64(wantNs)); diff > 5*10_000_000 {
			t.Fatalf("boundary %d at %d ns, want ~%d ns", i, gotNs, wantNs)
		}
	}
}

func TestDetectConstantSignal(t *testing.T) {
	samples := synth([]float64{100}, 200, 0.8, 2)
	segs, err := Detect(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("constant signal split into %d segments", len(segs))
	}
	if segs[0].N != 200 {
		t.Fatalf("segment covers %d samples", segs[0].N)
	}
}

func TestDetectIgnoresSmallWiggles(t *testing.T) {
	// 2 % steps below the 5 % default threshold must not trigger.
	samples := synth([]float64{100, 102, 100, 98}, 50, 0.3, 3)
	segs, err := Detect(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("sub-threshold steps split the signal into %d segments", len(segs))
	}
}

func TestDetectSensitivityOption(t *testing.T) {
	// The same 2 % steps are found with a tighter threshold.
	samples := synth([]float64{100, 102}, 60, 0.05, 4)
	segs, err := Detect(samples, Options{RelThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("tight threshold found %d segments, want 2", len(segs))
	}
}

func TestDetectValidation(t *testing.T) {
	if _, err := Detect(synth([]float64{1}, 3, 0, 5), Options{}); err == nil {
		t.Fatal("too few samples must error")
	}
	bad := synth([]float64{1}, 20, 0, 6)
	bad[5].TimeNs = bad[4].TimeNs - 1
	if _, err := Detect(bad, Options{}); err == nil {
		t.Fatal("out-of-order samples must error")
	}
}

func TestDetectCoversFullSpan(t *testing.T) {
	samples := synth([]float64{50, 150}, 30, 0.5, 7)
	segs, err := Detect(samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].StartNs != samples[0].TimeNs {
		t.Fatal("first segment must start at the first sample")
	}
	if segs[len(segs)-1].EndNs != samples[len(samples)-1].TimeNs {
		t.Fatal("last segment must end at the last sample")
	}
	// Segments tile the span without overlap.
	for i := 1; i < len(segs); i++ {
		if segs[i].StartNs != segs[i-1].EndNs {
			t.Fatal("segments must tile without gaps")
		}
	}
}

// TestDetectOnSimulatedPowerTrace recovers the roco2 thread-sweep
// steps from the power samples of a real trace archive — the
// integration the module exists for.
func TestDetectOnSimulatedPowerTrace(t *testing.T) {
	var archive []byte
	_, err := acquisition.Acquire(acquisition.Options{
		Seed:         3,
		Events:       []pmu.EventID{cycID()},
		SampleRateHz: 50,
		TraceSink: func(name string, data []byte) {
			if archive == nil {
				archive = append([]byte(nil), data...)
			}
		},
	}, []*workloads.Workload{workloads.MustByName("compute")}, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	defs := r.Definitions()
	isPower := map[trace.Ref]bool{}
	for _, m := range defs.Metrics {
		if phaseprofile.IsPowerMetric(m.Name) {
			isPower[m.Ref] = true
		}
	}
	// Sum the per-socket channels per timestamp into one node signal.
	sums := map[uint64]float64{}
	var order []uint64
	trueBoundaries := 0
	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == trace.KindEnter {
			trueBoundaries++
		}
		if ev.Kind == trace.KindMetric && isPower[ev.Metric] {
			if _, ok := sums[ev.TimeNs]; !ok {
				order = append(order, ev.TimeNs)
			}
			sums[ev.TimeNs] += ev.Value
		}
	}
	samples := make([]Sample, 0, len(order))
	for _, tNs := range order {
		samples = append(samples, Sample{TimeNs: tNs, Value: sums[tNs]})
	}
	segs, err := Detect(samples, Options{RelThreshold: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	// compute sweeps 8 thread counts → 8 instrumented phases. The
	// detector must find most of them (adjacent low-thread steps differ
	// by only a few watts and may merge).
	if len(segs) < trueBoundaries-3 || len(segs) > trueBoundaries+2 {
		t.Fatalf("detected %d segments for %d instrumented phases", len(segs), trueBoundaries)
	}
	// Power must increase across the detected sweep.
	if segs[len(segs)-1].Mean <= segs[0].Mean {
		t.Fatal("detected means must rise through the thread sweep")
	}
}

func cycID() pmu.EventID { return pmu.MustByName("TOT_CYC").ID }
