// Package phasedetect segments a sampled metric time series into
// steady-state phases — the job the paper delegates to HAEC-SIM for
// roco2 traces. Region instrumentation (Enter/Leave) gives exact phase
// boundaries; for un-instrumented workloads the boundaries must be
// recovered from the signal itself. The detector finds change points
// in a noisy, piecewise-constant signal (power or a counter rate) with
// a sliding-window mean-shift test.
package phasedetect

import (
	"fmt"
	"math"
)

// Sample is one observation of the monitored signal.
type Sample struct {
	TimeNs uint64
	Value  float64
}

// Segment is one detected steady-state phase.
type Segment struct {
	StartNs uint64
	EndNs   uint64
	// Mean and Std summarize the signal inside the segment.
	Mean float64
	Std  float64
	// N is the number of samples in the segment.
	N int
}

// DurationS returns the segment length in seconds.
func (s Segment) DurationS() float64 { return float64(s.EndNs-s.StartNs) / 1e9 }

// Options tunes the detector.
type Options struct {
	// Window is the number of recent samples whose mean is compared
	// against the current segment mean. Default 4.
	Window int
	// RelThreshold is the relative mean shift that opens a new
	// segment: |window mean − segment mean| > RelThreshold·|segment
	// mean|. Default 0.05 (5 %).
	RelThreshold float64
	// SigmaThreshold additionally requires the shift to exceed this
	// many segment standard deviations (guards against triggering on
	// a quiet signal's noise floor). Default 3.
	SigmaThreshold float64
	// MinSegment is the minimum number of samples per segment; shorter
	// candidate segments are merged into their successor. Default =
	// Window.
	MinSegment int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.RelThreshold <= 0 {
		o.RelThreshold = 0.05
	}
	if o.SigmaThreshold <= 0 {
		o.SigmaThreshold = 3
	}
	if o.MinSegment <= 0 {
		o.MinSegment = o.Window
	}
	return o
}

// Detect segments the samples into steady-state phases. Samples must
// be in ascending time order.
func Detect(samples []Sample, opts Options) ([]Segment, error) {
	o := opts.withDefaults()
	if len(samples) < 2*o.Window {
		return nil, fmt.Errorf("phasedetect: need at least %d samples, have %d", 2*o.Window, len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeNs < samples[i-1].TimeNs {
			return nil, fmt.Errorf("phasedetect: samples out of order at index %d", i)
		}
	}

	var segments []Segment
	segStart := 0
	// Running statistics of the current segment (Welford).
	var n, mean, m2 float64
	push := func(v float64) {
		n++
		d := v - mean
		mean += d / n
		m2 += d * (v - mean)
	}
	reset := func() { n, mean, m2 = 0, 0, 0 }
	std := func() float64 {
		if n < 2 {
			return 0
		}
		return math.Sqrt(m2 / (n - 1))
	}

	closeSegment := func(endIdx int) {
		// Segment covers samples[segStart:endIdx) and extends to the
		// first sample of the next segment (or the last sample time).
		endNs := samples[len(samples)-1].TimeNs
		if endIdx < len(samples) {
			endNs = samples[endIdx].TimeNs
		}
		segments = append(segments, Segment{
			StartNs: samples[segStart].TimeNs,
			EndNs:   endNs,
			Mean:    mean,
			Std:     std(),
			N:       endIdx - segStart,
		})
	}

	for i, s := range samples {
		inSegment := i - segStart
		if inSegment < o.MinSegment {
			push(s.Value)
			continue
		}
		// Mean of the trailing window.
		var wsum float64
		for j := i - o.Window + 1; j <= i; j++ {
			wsum += samples[j].Value
		}
		wmean := wsum / float64(o.Window)
		shift := math.Abs(wmean - mean)
		trigger := shift > o.RelThreshold*math.Abs(mean) &&
			shift > o.SigmaThreshold*std()/math.Sqrt(float64(o.Window))
		if trigger {
			// Boundary at the first sample of the window that actually
			// deviates from the segment level — the window mean lags
			// the true change point by up to Window−1 samples.
			boundary := i
			for j := i - o.Window + 1; j <= i; j++ {
				if math.Abs(samples[j].Value-mean) > o.RelThreshold*math.Abs(mean) {
					boundary = j
					break
				}
			}
			if boundary <= segStart {
				boundary = i
			}
			// Rewind the running stats to exclude the window samples
			// that belong to the new segment.
			reset()
			for j := segStart; j < boundary; j++ {
				push(samples[j].Value)
			}
			closeSegment(boundary)
			segStart = boundary
			reset()
			for j := boundary; j <= i; j++ {
				push(samples[j].Value)
			}
			continue
		}
		push(s.Value)
	}
	closeSegment(len(samples))
	return segments, nil
}
