package acquisition

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"pmcpower/internal/pmu"
)

// WriteCSV exports the dataset as CSV: one row per experiment, with
// the identification columns first, then measured power and voltage,
// then one column per counter (absolute rates in events/second). The
// counter column set is the union over all rows, sorted by event ID,
// so heterogeneous datasets export losslessly; missing counters are
// empty cells.
func (d *Dataset) WriteCSV(w io.Writer) error {
	// Union of events across rows.
	present := map[pmu.EventID]bool{}
	for _, r := range d.Rows {
		for id := range r.Rates {
			present[id] = true
		}
	}
	var events []pmu.EventID
	for id := range present {
		events = append(events, id)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })

	cw := csv.NewWriter(w)
	header := []string{"workload", "class", "freq_mhz", "threads", "power_w", "voltage_v"}
	for _, id := range events {
		header = append(header, pmu.Lookup(id).Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("acquisition: writing CSV header: %w", err)
	}
	for _, r := range d.Rows {
		rec := []string{
			r.Workload,
			r.Class.String(),
			strconv.Itoa(r.FreqMHz),
			strconv.Itoa(r.Threads),
			strconv.FormatFloat(r.PowerW, 'g', -1, 64),
			strconv.FormatFloat(r.VoltageV, 'g', -1, 64),
		}
		for _, id := range events {
			if v, ok := r.Rates[id]; ok {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("acquisition: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
