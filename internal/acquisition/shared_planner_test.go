package acquisition

import (
	"testing"

	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

func TestSharedPlannerProducesEquivalentDatasets(t *testing.T) {
	wls := []*workloads.Workload{workloads.MustByName("sinus")}
	base, err := Acquire(Options{Seed: 12}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	var baseRuns, sharedRuns int
	countRuns := func(n *int) func(string, []byte) {
		return func(string, []byte) { *n++ }
	}
	if _, err := Acquire(Options{Seed: 12, TraceSink: countRuns(&baseRuns)}, wls, []int{2400}); err != nil {
		t.Fatal(err)
	}
	shared, err := Acquire(Options{Seed: 12, SharedPlanner: true, TraceSink: countRuns(&sharedRuns)}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	if sharedRuns >= baseRuns {
		t.Fatalf("shared planner used %d runs, baseline %d — sharing must reduce runs", sharedRuns, baseRuns)
	}
	// The merged dataset still carries every preset, and the values
	// agree with the baseline within run-to-run variation.
	if len(shared.Rows) != len(base.Rows) {
		t.Fatalf("row count changed: %d vs %d", len(shared.Rows), len(base.Rows))
	}
	for i := range shared.Rows {
		if len(shared.Rows[i].Rates) != pmu.NumEvents() {
			t.Fatalf("row %d has %d counters", i, len(shared.Rows[i].Rates))
		}
		for id, v := range shared.Rows[i].Rates {
			bv := base.Rows[i].Rates[id]
			if bv == 0 && v == 0 {
				continue
			}
			rel := (v - bv) / bv
			if rel < -0.12 || rel > 0.12 {
				t.Fatalf("row %d event %s: shared %g vs base %g (%.1f%% apart)",
					i, pmu.Lookup(id).Short, v, bv, rel*100)
			}
		}
	}
}
