package acquisition

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

func TestWriteCSV(t *testing.T) {
	wls := []*workloads.Workload{workloads.MustByName("compute")}
	ds, err := Acquire(Options{Seed: 1, Events: smallEvents()}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(ds.Rows)+1 {
		t.Fatalf("%d CSV records for %d rows", len(records), len(ds.Rows))
	}
	header := records[0]
	if header[0] != "workload" || header[4] != "power_w" {
		t.Fatalf("header = %v", header)
	}
	// One column per event, in ID order, full PAPI names.
	wantCols := 6 + len(smallEvents())
	if len(header) != wantCols {
		t.Fatalf("%d columns, want %d", len(header), wantCols)
	}
	for _, name := range header[6:] {
		if !strings.HasPrefix(name, "PAPI_") {
			t.Fatalf("counter column %q lacks PAPI prefix", name)
		}
		if _, err := pmu.ByName(name); err != nil {
			t.Fatalf("unknown counter column %q", name)
		}
	}
	// Values round-trip numerically.
	for i, rec := range records[1:] {
		p, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if p != ds.Rows[i].PowerW {
			t.Fatalf("row %d power %v != %v", i, p, ds.Rows[i].PowerW)
		}
		thr, err := strconv.Atoi(rec[3])
		if err != nil || thr != ds.Rows[i].Threads {
			t.Fatalf("row %d threads %v", i, rec[3])
		}
	}
}

func TestWriteCSVHeterogeneousRows(t *testing.T) {
	// Rows with different counter sets → union columns, empty cells.
	ds := &Dataset{Rows: []*Row{
		{Workload: "a", FreqMHz: 2400, Threads: 1, PowerW: 100, VoltageV: 1,
			Rates: map[pmu.EventID]float64{pmu.MustByName("TOT_CYC").ID: 1e9}},
		{Workload: "b", FreqMHz: 2400, Threads: 1, PowerW: 110, VoltageV: 1,
			Rates: map[pmu.EventID]float64{pmu.MustByName("BR_MSP").ID: 5e6}},
	}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records[0]) != 6+2 {
		t.Fatalf("union columns wrong: %v", records[0])
	}
	empties := 0
	for _, rec := range records[1:] {
		for _, cell := range rec[6:] {
			if cell == "" {
				empties++
			}
		}
	}
	if empties != 2 {
		t.Fatalf("%d empty cells, want 2", empties)
	}
}
