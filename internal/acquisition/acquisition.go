// Package acquisition orchestrates the paper's data acquisition and
// post-processing stages end to end:
//
//	for every (workload, frequency): for every multiplexed event-set run:
//	    execute the workload on the simulated node under tracing
//	    (Score-P-style recorder + metric plugins) → trace archive
//	→ phase profiles (internal/phaseprofile)
//	→ combined across runs
//	→ regression dataset rows (one per workload/frequency/thread-count)
//
// "Multiple runs of the same application are required due to the
// hardware limitation on simultaneous recording of multiple PAPI
// counters. The operating frequency f_clk is always fixed to one
// particular value during one particular execution of a workload."
package acquisition

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"

	"pmcpower/internal/cpusim"
	"pmcpower/internal/metricplugin"
	"pmcpower/internal/obs"
	"pmcpower/internal/parallel"
	"pmcpower/internal/phaseprofile"
	"pmcpower/internal/pmu"
	"pmcpower/internal/power"
	"pmcpower/internal/rng"
	"pmcpower/internal/trace"
	"pmcpower/internal/workloads"
)

// Options configures an acquisition campaign.
type Options struct {
	// Platform defaults to cpusim.HaswellEP().
	Platform *cpusim.Platform
	// Model is the ground-truth power model; defaults to
	// power.DefaultModel().
	Model *power.Model
	// Seed drives every stochastic aspect of the campaign.
	Seed uint64
	// Events are the PMC events to collect; defaults to all presets.
	Events []pmu.EventID
	// PhaseDurationS is the simulated duration of each workload phase
	// at each thread step. Default 1 s.
	PhaseDurationS float64
	// SampleRateHz is the async metric plugin sampling rate written to
	// the trace. Default 20 Hz.
	SampleRateHz float64
	// TraceSink, when non-nil, receives every produced trace archive
	// (keyed by a descriptive name) before post-processing — used by
	// the trace-inspection tooling and tests.
	TraceSink func(name string, data []byte)
	// SharedPlanner uses the native-event-aware multiplex planner
	// (pmu.PlanRunsShared), which co-schedules presets that share
	// native registers and therefore needs fewer runs per workload.
	// Off by default: the canonical experiments use the conservative
	// per-preset plan.
	SharedPlanner bool
	// Parallelism bounds the workers running the independent
	// (workload, frequency) campaign cells: 0 = GOMAXPROCS,
	// 1 = serial. Every cell's noise streams are derived from stable
	// (workload, frequency, run) labels, and rows and trace archives
	// are reduced in cell order, so the dataset is bit-identical at
	// every parallelism level.
	Parallelism int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Platform == nil {
		out.Platform = cpusim.HaswellEP()
	}
	if out.Model == nil {
		out.Model = power.DefaultModel()
	}
	if len(out.Events) == 0 {
		out.Events = pmu.AllIDs()
	}
	if out.PhaseDurationS == 0 {
		out.PhaseDurationS = 1.0
	}
	if out.SampleRateHz == 0 {
		out.SampleRateHz = 20
	}
	return out
}

// Row is one experiment of the regression dataset: a (workload,
// frequency, thread count) combination with its merged measurements,
// matching the granularity of the paper's Figure 5 data points
// ("a combination of workload, core frequency, and for the synthetic
// workload kernels, thread count").
type Row struct {
	Workload string
	Class    workloads.Class
	FreqMHz  int
	Threads  int

	// PowerW is the measured average node power, averaged over all
	// multiplexed runs of the experiment.
	PowerW float64
	// VoltageV is the measured average core voltage.
	VoltageV float64
	// Rates are average PMC event rates in events/second, merged from
	// the multiplexed runs.
	Rates map[pmu.EventID]float64
}

// CyclesPerSec returns the TOT_CYC rate of the row.
func (r *Row) CyclesPerSec() float64 {
	return r.Rates[pmu.MustByName("TOT_CYC").ID]
}

// RatePerCycle returns the event's rate per CPU clock cycle at the
// fixed operating frequency (events/s divided by f_clk) — the E_n of
// the paper's Equation 1 ("since the value of the PMC events are
// related to the operating frequency, the PMC event rate, i.e., the
// number of events per cpu cycle, is used").
//
// Counters are node aggregates, so E_n of TOT_CYC itself is the
// average number of unhalted cores — the utilization signal.
func (r *Row) RatePerCycle(id pmu.EventID) float64 {
	fHz := float64(r.FreqMHz) * 1e6
	if fHz == 0 {
		return 0
	}
	return r.Rates[id] / fHz
}

// Dataset is the output of an acquisition campaign.
type Dataset struct {
	Platform *cpusim.Platform
	Rows     []*Row
}

// Acquire runs the full campaign over the given workloads and
// frequencies and returns the merged dataset. Excluded workloads are
// skipped (mirroring the paper's exclusions).
func Acquire(opts Options, wls []*workloads.Workload, freqsMHz []int) (*Dataset, error) {
	return AcquireCtx(context.Background(), opts, wls, freqsMHz)
}

// AcquireCtx is Acquire under a caller context: cancellation stops
// the campaign between cells, and when the context carries an
// obs.Tracer the campaign emits an "acquire" span with one
// "acquire.cell" child per (workload, frequency) pair. Tracing writes
// timing to a side buffer only — the dataset stays bit-identical with
// or without a tracer attached.
func AcquireCtx(ctx context.Context, opts Options, wls []*workloads.Workload, freqsMHz []int) (*Dataset, error) {
	o := opts.withDefaults()
	if len(wls) == 0 || len(freqsMHz) == 0 {
		return nil, fmt.Errorf("acquisition: need at least one workload and one frequency")
	}
	planFn := pmu.PlanRuns
	if o.SharedPlanner {
		planFn = pmu.PlanRunsShared
	}
	plan, err := planFn(o.Events)
	if err != nil {
		return nil, err
	}
	exec := cpusim.NewExecutor(o.Platform)
	base := rng.New(o.Seed)
	// One independently calibrated sensor per socket, as on the real
	// system.
	sensors := make([]*power.Sensor, o.Platform.Sockets)
	for si := range sensors {
		sensors[si] = power.NewSensor(base.Split(rng.HashString(fmt.Sprintf("sensor-calibration-%d", si))))
	}

	// One campaign cell per (workload, frequency) pair — the paper's
	// embarrassingly parallel outer loop. P-states are validated up
	// front so an invalid frequency fails before any work is spawned,
	// exactly as the serial loop's first iteration would.
	type cell struct {
		w *workloads.Workload
		f int
	}
	var cells []cell
	for _, w := range wls {
		if w.Excluded {
			continue
		}
		for _, f := range freqsMHz {
			if _, err := o.Platform.PStateFor(f); err != nil {
				return nil, err
			}
			cells = append(cells, cell{w: w, f: f})
		}
	}

	type namedTrace struct {
		name string
		data []byte
	}
	type cellResult struct {
		rows   []*Row
		traces []namedTrace
	}
	ctx, acqSpan := obs.FromContext(ctx).StartSpan(ctx, "acquire",
		obs.Int("cells", len(cells)), obs.Int("frequencies", len(freqsMHz)), obs.Int("events", len(o.Events)))
	defer acqSpan.End()

	// Every stochastic input of a cell comes from rng streams split
	// off the campaign seed by a stable (workload, frequency, run)
	// label, so a cell's output is independent of which worker runs it
	// and of how many cells run concurrently.
	results, err := parallel.MapCtx(ctx, len(cells), o.Parallelism, func(ctx context.Context, ci int) (cellResult, error) {
		w, f := cells[ci].w, cells[ci].f
		_, cellSpan := obs.FromContext(ctx).StartSpan(ctx, "acquire.cell",
			obs.String("workload", w.Name), obs.Int("freq_mhz", f))
		defer cellSpan.End()
		var res cellResult
		runProfiles := make([][]*phaseprofile.Phase, 0, len(plan))
		for runIdx, set := range plan {
			seed := base.Split(rng.HashString(fmt.Sprintf("%s|%d|run%d", w.Name, f, runIdx)))
			var buf bytes.Buffer
			if err := recordRun(&o, exec, sensors, w, f, set, seed, &buf); err != nil {
				return cellResult{}, fmt.Errorf("acquisition: %s @ %d MHz run %d: %w", w.Name, f, runIdx, err)
			}
			if o.TraceSink != nil {
				res.traces = append(res.traces, namedTrace{
					name: fmt.Sprintf("%s_%dMHz_run%d.trc", w.Name, f, runIdx),
					data: append([]byte(nil), buf.Bytes()...),
				})
			}
			phases, err := phaseprofile.FromTrace(&buf, w.Name)
			if err != nil {
				return cellResult{}, fmt.Errorf("acquisition: post-processing %s @ %d MHz run %d: %w", w.Name, f, runIdx, err)
			}
			runProfiles = append(runProfiles, phases)
		}
		merged := phaseprofile.CombineRuns(runProfiles...)
		rows, err := rowsFromPhases(w, f, merged)
		if err != nil {
			return cellResult{}, err
		}
		res.rows = rows
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	ds := &Dataset{Platform: o.Platform}
	// Reduce in cell order: the sink sees archives in the exact
	// sequence the serial campaign would have produced them, and row
	// collection order never depends on scheduling.
	for _, res := range results {
		for _, tr := range res.traces {
			o.TraceSink(tr.name, tr.data)
		}
		ds.Rows = append(ds.Rows, res.rows...)
	}
	sortRows(ds.Rows)
	return ds, nil
}

// recordRun executes every (thread step × phase) of a workload at one
// frequency with one event set, writing the Score-P-style trace to w.
func recordRun(o *Options, exec *cpusim.Executor, sensors []*power.Sensor,
	wl *workloads.Workload, freqMHz int, set *pmu.EventSet, seed *rng.Rand, w io.Writer) error {

	tw := trace.NewWriter(w)
	loc, err := tw.DefineLocation("master thread")
	if err != nil {
		return err
	}
	// One location per hardware core: the voltage reader and the PMC
	// sampler are per-core instruments; their streams are attributed
	// to core locations and re-aggregated during post-processing.
	coreLocs := make([]trace.Ref, exec.Platform().TotalCores())
	for c := range coreLocs {
		coreLocs[c], err = tw.DefineLocation(fmt.Sprintf("core %d", c))
		if err != nil {
			return err
		}
	}

	// Region per (phase, thread count).
	type step struct {
		phaseIdx int
		threads  int
		region   trace.Ref
	}
	// Thread sweeps are defined for the largest platform; smaller
	// platforms (the embedded ARM configuration) cap each entry at the
	// available cores and deduplicate.
	cores := exec.Platform().TotalCores()
	var sweep []int
	seenN := map[int]bool{}
	for _, n := range wl.ThreadSweep {
		if n > cores {
			n = cores
		}
		if !seenN[n] {
			seenN[n] = true
			sweep = append(sweep, n)
		}
	}

	var steps []step
	for _, n := range sweep {
		for pi, ph := range wl.Phases {
			reg, err := tw.DefineRegion(fmt.Sprintf("%s@%d", ph.Name, n))
			if err != nil {
				return err
			}
			steps = append(steps, step{phaseIdx: pi, threads: n, region: reg})
		}
	}

	// Metric definitions: recorder-provided sync annotations first,
	// then one metric per plugin-provided metric.
	thrRef, err := tw.DefineMetric(phaseprofile.MetricThreads, "threads", trace.MetricSync)
	if err != nil {
		return err
	}
	freqRef, err := tw.DefineMetric(phaseprofile.MetricFreq, "MHz", trace.MetricSync)
	if err != nil {
		return err
	}

	apapi, err := metricplugin.NewApapiPlugin(set, o.SampleRateHz)
	if err != nil {
		return err
	}
	powerPl, err := metricplugin.NewPowerPlugin(o.Model, sensors, o.SampleRateHz)
	if err != nil {
		return err
	}
	voltPl, err := metricplugin.NewVoltagePlugin(o.SampleRateHz)
	if err != nil {
		return err
	}
	plugins := []metricplugin.Plugin{powerPl, voltPl, apapi}
	type pluginMetrics struct {
		plugin metricplugin.Plugin
		refs   []trace.Ref
	}
	var pms []pluginMetrics
	for _, pl := range plugins {
		pm := pluginMetrics{plugin: pl}
		for _, spec := range pl.Metrics() {
			ref, err := tw.DefineMetric(spec.Name, spec.Unit, spec.Mode)
			if err != nil {
				return err
			}
			pm.refs = append(pm.refs, ref)
		}
		pms = append(pms, pm)
	}

	// Execute the steps back to back on a simulated timeline.
	now := uint64(0)
	for si, st := range steps {
		durNs := uint64(o.PhaseDurationS * 1e9)
		start, end := now, now+durNs
		stepSeed := seed.Split(rng.HashString(fmt.Sprintf("step%d", si)))

		act, err := exec.Execute(cpusim.RunConfig{
			Workload:  wl,
			PhaseIdx:  st.phaseIdx,
			FreqMHz:   freqMHz,
			Threads:   st.threads,
			DurationS: o.PhaseDurationS,
		}, stepSeed.Split(rng.HashString("exec")))
		if err != nil {
			return err
		}

		if err := tw.WriteEvent(trace.Event{Kind: trace.KindEnter, Location: loc, TimeNs: start, Region: st.region}); err != nil {
			return err
		}
		if err := tw.WriteEvent(trace.Event{Kind: trace.KindMetric, Location: loc, TimeNs: start, Metric: thrRef, Value: float64(st.threads)}); err != nil {
			return err
		}
		if err := tw.WriteEvent(trace.Event{Kind: trace.KindMetric, Location: loc, TimeNs: start, Metric: freqRef, Value: float64(freqMHz)}); err != nil {
			return err
		}

		// Gather all plugin samples for the interval and write them in
		// chronological order.
		iv := &metricplugin.Interval{
			StartNs:  start,
			EndNs:    end,
			Activity: act,
			Platform: o.Platform,
		}
		type timed struct {
			t   uint64
			loc trace.Ref
			ref trace.Ref
			v   float64
		}
		var all []timed
		for pi, pm := range pms {
			iv.Rand = stepSeed.Split(rng.HashString(fmt.Sprintf("plugin%d", pi)))
			samples, err := pm.plugin.Sample(iv)
			if err != nil {
				return err
			}
			for _, s := range samples {
				sampleLoc := loc
				if s.Core != metricplugin.NodeLevel {
					if s.Core < 0 || s.Core >= len(coreLocs) {
						return fmt.Errorf("acquisition: plugin %s emitted sample for invalid core %d", pm.plugin.Name(), s.Core)
					}
					sampleLoc = coreLocs[s.Core]
				}
				all = append(all, timed{t: s.TimeNs, loc: sampleLoc, ref: pm.refs[s.MetricIndex], v: s.Value})
			}
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
		for _, s := range all {
			if err := tw.WriteEvent(trace.Event{Kind: trace.KindMetric, Location: s.loc, TimeNs: s.t, Metric: s.ref, Value: s.v}); err != nil {
				return err
			}
		}
		if err := tw.WriteEvent(trace.Event{Kind: trace.KindLeave, Location: loc, TimeNs: end, Region: st.region}); err != nil {
			return err
		}
		now = end
	}
	return tw.Close()
}

// rowsFromPhases aggregates merged phase profiles into dataset rows:
// one row per thread count, with multi-phase workloads averaged by
// phase duration.
func rowsFromPhases(wl *workloads.Workload, freqMHz int, phases []*phaseprofile.Phase) ([]*Row, error) {
	byThreads := make(map[int][]*phaseprofile.Phase)
	for _, ph := range phases {
		if ph.FreqMHz != freqMHz {
			return nil, fmt.Errorf("acquisition: phase %q has frequency %d, expected %d", ph.Region, ph.FreqMHz, freqMHz)
		}
		byThreads[ph.Threads] = append(byThreads[ph.Threads], ph)
	}
	var rows []*Row
	for threads, group := range byThreads {
		row := &Row{
			Workload: wl.Name,
			Class:    wl.Class,
			FreqMHz:  freqMHz,
			Threads:  threads,
			Rates:    make(map[pmu.EventID]float64),
		}
		var totalS float64
		for _, ph := range group {
			d := ph.DurationS()
			totalS += d
			row.PowerW += ph.PowerW * d
			row.VoltageV += ph.VoltageV * d
			for id, r := range ph.Rates {
				row.Rates[id] += r * d
			}
		}
		if totalS == 0 {
			return nil, fmt.Errorf("acquisition: zero total duration for %s@%d threads", wl.Name, threads)
		}
		row.PowerW /= totalS
		row.VoltageV /= totalS
		for id := range row.Rates {
			row.Rates[id] /= totalS
		}
		rows = append(rows, row)
	}
	sortRows(rows)
	return rows, nil
}

func sortRows(rows []*Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.FreqMHz != b.FreqMHz {
			return a.FreqMHz < b.FreqMHz
		}
		return a.Threads < b.Threads
	})
}

// Filter returns the subset of rows matching pred, preserving order.
func (d *Dataset) Filter(pred func(*Row) bool) *Dataset {
	out := &Dataset{Platform: d.Platform}
	for _, r := range d.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// ByClass returns the subset of rows of one workload class.
func (d *Dataset) ByClass(c workloads.Class) *Dataset {
	return d.Filter(func(r *Row) bool { return r.Class == c })
}

// AtFrequency returns the subset of rows at one frequency.
func (d *Dataset) AtFrequency(freqMHz int) *Dataset {
	return d.Filter(func(r *Row) bool { return r.FreqMHz == freqMHz })
}

// Workloads returns the distinct workload names in the dataset, sorted.
func (d *Dataset) Workloads() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range d.Rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			out = append(out, r.Workload)
		}
	}
	sort.Strings(out)
	return out
}
