package acquisition

import (
	"math"
	"testing"

	"pmcpower/internal/cpusim"
	"pmcpower/internal/pmu"
	"pmcpower/internal/power"
	"pmcpower/internal/rng"
	"pmcpower/internal/workloads"
)

func smallEvents() []pmu.EventID {
	return []pmu.EventID{
		pmu.MustByName("TOT_CYC").ID,
		pmu.MustByName("TOT_INS").ID,
		pmu.MustByName("L3_TCM").ID,
		pmu.MustByName("BR_MSP").ID,
	}
}

func TestAcquireBasicShape(t *testing.T) {
	wls := []*workloads.Workload{
		workloads.MustByName("compute"), // roco2: 8 thread steps
		workloads.MustByName("md"),      // SPEC: 24 threads only
	}
	ds, err := Acquire(Options{Seed: 1, Events: smallEvents()}, wls, []int{1200, 2400})
	if err != nil {
		t.Fatal(err)
	}
	// compute: 8 thread steps × 2 freqs; md: 1 × 2 freqs.
	if len(ds.Rows) != 8*2+2 {
		t.Fatalf("got %d rows, want 18", len(ds.Rows))
	}
	for _, r := range ds.Rows {
		if r.PowerW < 30 || r.PowerW > 400 {
			t.Fatalf("%s power %.1f W implausible", r.Workload, r.PowerW)
		}
		if r.VoltageV < 0.6 || r.VoltageV > 1.2 {
			t.Fatalf("%s voltage %.3f V implausible", r.Workload, r.VoltageV)
		}
		if len(r.Rates) != len(smallEvents()) {
			t.Fatalf("%s has %d counter rates, want %d", r.Workload, len(r.Rates), len(smallEvents()))
		}
		if r.CyclesPerSec() <= 0 {
			t.Fatalf("%s has no cycle rate", r.Workload)
		}
	}
}

func TestAcquireDeterministic(t *testing.T) {
	wls := []*workloads.Workload{workloads.MustByName("sqrt")}
	a, err := Acquire(Options{Seed: 5, Events: smallEvents()}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Acquire(Options{Seed: 5, Events: smallEvents()}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].PowerW != b.Rows[i].PowerW {
			t.Fatal("identical seeds must produce identical datasets")
		}
		for id, v := range a.Rows[i].Rates {
			if b.Rows[i].Rates[id] != v {
				t.Fatal("identical seeds must produce identical counter rates")
			}
		}
	}
	c, err := Acquire(Options{Seed: 6, Events: smallEvents()}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0].PowerW == c.Rows[0].PowerW {
		t.Fatal("different seeds must differ")
	}
}

func TestAcquireSkipsExcluded(t *testing.T) {
	wls := []*workloads.Workload{
		workloads.MustByName("kdtree"), // excluded
		workloads.MustByName("sqrt"),
	}
	ds, err := Acquire(Options{Seed: 1, Events: smallEvents()}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Rows {
		if r.Workload == "kdtree" {
			t.Fatal("excluded workload must be skipped")
		}
	}
}

func TestAcquireValidation(t *testing.T) {
	if _, err := Acquire(Options{}, nil, []int{2400}); err == nil {
		t.Fatal("empty workload list must error")
	}
	wls := []*workloads.Workload{workloads.MustByName("sqrt")}
	if _, err := Acquire(Options{}, wls, nil); err == nil {
		t.Fatal("empty frequency list must error")
	}
	if _, err := Acquire(Options{Events: smallEvents()}, wls, []int{1337}); err == nil {
		t.Fatal("unknown frequency must error")
	}
}

func TestMultiplexedRunsMergeAllCounters(t *testing.T) {
	// Recording all 54 presets needs several runs; the merged rows
	// must carry every event.
	wls := []*workloads.Workload{workloads.MustByName("sinus")}
	ds, err := Acquire(Options{Seed: 2}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Rows {
		if len(r.Rates) != pmu.NumEvents() {
			t.Fatalf("row has %d counters after merging, want all %d", len(r.Rates), pmu.NumEvents())
		}
	}
}

func TestMeasuredPowerTracksGroundTruth(t *testing.T) {
	// The measured (sensor) power in the dataset must be close to the
	// ground-truth model for the same activity.
	p := cpusim.HaswellEP()
	m := power.DefaultModel()
	ex := cpusim.NewExecutor(p)

	wls := []*workloads.Workload{workloads.MustByName("compute")}
	ds, err := Acquire(Options{Seed: 3, Events: smallEvents()}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Rows {
		a, err := ex.Execute(cpusim.RunConfig{
			Workload:  workloads.MustByName("compute"),
			FreqMHz:   r.FreqMHz,
			Threads:   r.Threads,
			DurationS: 1,
		}, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		gt, err := m.NodePower(p, a)
		if err != nil {
			t.Fatal(err)
		}
		truth := gt.TotalW
		if math.Abs(r.PowerW-truth)/truth > 0.05 {
			t.Fatalf("threads=%d: measured %.1f W vs truth %.1f W", r.Threads, r.PowerW, truth)
		}
	}
}

func TestRatePerCycleNormalization(t *testing.T) {
	wls := []*workloads.Workload{workloads.MustByName("compute")}
	ds, err := Acquire(Options{Seed: 4, Events: smallEvents()}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	cyc := pmu.MustByName("TOT_CYC").ID
	for _, r := range ds.Rows {
		// TOT_CYC per cpu-clock ≈ number of unhalted cores.
		e := r.RatePerCycle(cyc)
		if e < 0.5*float64(r.Threads) || e > 1.3*float64(r.Threads) {
			t.Fatalf("threads=%d: TOT_CYC rate per cycle = %.2f, want ≈ thread count", r.Threads, e)
		}
	}
}

func TestDatasetHelpers(t *testing.T) {
	wls := []*workloads.Workload{
		workloads.MustByName("compute"),
		workloads.MustByName("md"),
	}
	ds, err := Acquire(Options{Seed: 1, Events: smallEvents()}, wls, []int{1200, 2400})
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Workloads(); len(got) != 2 || got[0] != "compute" || got[1] != "md" {
		t.Fatalf("Workloads() = %v", got)
	}
	at := ds.AtFrequency(1200)
	for _, r := range at.Rows {
		if r.FreqMHz != 1200 {
			t.Fatal("AtFrequency leaked other frequencies")
		}
	}
	if len(at.Rows)+len(ds.AtFrequency(2400).Rows) != len(ds.Rows) {
		t.Fatal("frequency partition incomplete")
	}
	spec := ds.ByClass(workloads.SPEC)
	for _, r := range spec.Rows {
		if r.Workload != "md" {
			t.Fatalf("ByClass(SPEC) returned %s", r.Workload)
		}
	}
}

func TestRowsSortedDeterministically(t *testing.T) {
	wls := []*workloads.Workload{
		workloads.MustByName("md"),
		workloads.MustByName("compute"),
	}
	ds, err := Acquire(Options{Seed: 1, Events: smallEvents()}, wls, []int{2400, 1200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ds.Rows); i++ {
		a, b := ds.Rows[i-1], ds.Rows[i]
		if a.Workload > b.Workload {
			t.Fatal("rows not sorted by workload")
		}
		if a.Workload == b.Workload && a.FreqMHz > b.FreqMHz {
			t.Fatal("rows not sorted by frequency within workload")
		}
		if a.Workload == b.Workload && a.FreqMHz == b.FreqMHz && a.Threads >= b.Threads {
			t.Fatal("rows not sorted by threads")
		}
	}
}

func TestTraceSinkReceivesArchives(t *testing.T) {
	var names []string
	var totalBytes int
	opts := Options{
		Seed:   1,
		Events: smallEvents(),
		TraceSink: func(name string, data []byte) {
			names = append(names, name)
			totalBytes += len(data)
		},
	}
	wls := []*workloads.Workload{workloads.MustByName("sqrt")}
	if _, err := Acquire(opts, wls, []int{2400}); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 || totalBytes == 0 {
		t.Fatal("trace sink received nothing")
	}
}

func TestSPECPhasesAggregateByDuration(t *testing.T) {
	// md has phases with weights 0.7/0.3; the row must be the
	// duration-weighted aggregate, between the two phase powers.
	var archives [][]byte
	opts := Options{
		Seed:   7,
		Events: smallEvents(),
		TraceSink: func(name string, data []byte) {
			archives = append(archives, append([]byte(nil), data...))
		},
	}
	wls := []*workloads.Workload{workloads.MustByName("md")}
	ds, err := Acquire(opts, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Rows) != 1 {
		t.Fatalf("md must yield one row per frequency, got %d", len(ds.Rows))
	}
	if len(archives) == 0 {
		t.Fatal("no trace archives captured")
	}
}

func TestAcquireParallelEquivalence(t *testing.T) {
	// The determinism contract: per-run seeds are derived from the
	// campaign seed by order-insensitive splitting and the rows are
	// collected in cell order, so any Parallelism setting must yield
	// a bit-identical dataset.
	wls := []*workloads.Workload{
		workloads.MustByName("compute"),
		workloads.MustByName("md"),
		workloads.MustByName("sqrt"),
	}
	freqs := []int{1200, 2400}
	serial, err := Acquire(Options{Seed: 11, Events: smallEvents(), Parallelism: 1}, wls, freqs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Acquire(Options{Seed: 11, Events: smallEvents(), Parallelism: 4}, wls, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		s, p := serial.Rows[i], par.Rows[i]
		if s.Workload != p.Workload || s.Class != p.Class || s.FreqMHz != p.FreqMHz || s.Threads != p.Threads {
			t.Fatalf("row %d identity differs: %+v vs %+v", i, s, p)
		}
		if s.PowerW != p.PowerW || s.VoltageV != p.VoltageV {
			t.Fatalf("row %d measurements differ: %v/%v W, %v/%v V", i, s.PowerW, p.PowerW, s.VoltageV, p.VoltageV)
		}
		if len(s.Rates) != len(p.Rates) {
			t.Fatalf("row %d rate counts differ", i)
		}
		for id, v := range s.Rates {
			if p.Rates[id] != v {
				t.Fatalf("row %d rate %v differs: %v vs %v", i, id, v, p.Rates[id])
			}
		}
	}
}

func TestAcquireParallelTraceSinkOrder(t *testing.T) {
	// Trace archives must arrive on the sink in the same deterministic
	// order regardless of parallelism: workers hand their archives to
	// the cell-ordered reduction instead of calling the sink directly.
	collect := func(parallelism int) (names []string, sizes []int) {
		opts := Options{
			Seed:        3,
			Events:      smallEvents(),
			Parallelism: parallelism,
			TraceSink: func(name string, data []byte) {
				names = append(names, name)
				sizes = append(sizes, len(data))
			},
		}
		wls := []*workloads.Workload{
			workloads.MustByName("sqrt"),
			workloads.MustByName("md"),
		}
		if _, err := Acquire(opts, wls, []int{1200, 2400}); err != nil {
			t.Fatal(err)
		}
		return names, sizes
	}
	sn, ss := collect(1)
	pn, ps := collect(4)
	if len(sn) == 0 {
		t.Fatal("trace sink received nothing")
	}
	if len(sn) != len(pn) {
		t.Fatalf("archive counts differ: %d vs %d", len(sn), len(pn))
	}
	for i := range sn {
		if sn[i] != pn[i] {
			t.Fatalf("archive %d name differs: %q vs %q", i, sn[i], pn[i])
		}
		if ss[i] != ps[i] {
			t.Fatalf("archive %d (%s) size differs: %d vs %d", i, sn[i], ss[i], ps[i])
		}
	}
}
