package workloads

// roco2-style synthetic workload kernels. Each kernel exercises one
// corner of the machine with a steady, narrow profile, and is run at a
// sweep of thread counts (the roco2 workload generator steps through
// thread placements). Mirrors the kernels referenced by the paper:
// sqrt and compute are named explicitly; the memory kernels provide
// the bandwidth corner; addpd/mulpd the AVX corner; idle the baseline.

// roco2Sweep is the thread-count ladder used by the synthetic kernels
// on the 24-core node.
var roco2Sweep = []int{1, 2, 4, 8, 12, 16, 20, 24}

// Idle sits in deep C-states with only housekeeping activity.
var Idle = register(&Workload{
	Name:        "idle",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "busy-waiting-free idle loop; cores in deep C-states",
	Phases: []Phase{{
		Name:     "idle",
		Weight:   1,
		LoadFrac: 0.15, StoreFrac: 0.08,
		CondBranchFrac: 0.18, UncondBranchFrac: 0.03,
		TakenFrac: 0.6, MispFrac: 0.02,
		L1DMissPKI: 2, L2DMissPKI: 0.8, L3MissPKI: 0.3,
		L1IMissPKI: 1.5, L2IMissPKI: 0.4,
		TLBDMissPKI: 0.05, TLBIMissPKI: 0.03,
		PrefPKI: 0.5, PrefMissPKI: 0.2,
		BaseIPC: 0.8, FullIssueFrac: 0.02, FullRetireFrac: 0.02,
		MLP: 1.5, SnoopPKI: 0.05, SnoopThreadScale: 0.002,
		ParallelEff: 1.0,
		DutyCycle:   0.015,
	}},
})

// Compute is a register-resident integer ALU loop with a
// data-dependent conditional, giving it the highest branch
// misprediction rate of the synthetic kernels (the paper notes BR_MSP
// "has relatively high values" for compute and md).
var Compute = register(&Workload{
	Name:        "compute",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "register-resident integer arithmetic with data-dependent branches",
	Phases: []Phase{{
		Name:     "alu",
		Weight:   1,
		LoadFrac: 0.04, StoreFrac: 0.02,
		CondBranchFrac: 0.16, UncondBranchFrac: 0.01,
		TakenFrac: 0.48, MispFrac: 0.075,
		L1DMissPKI: 0.05, L2DMissPKI: 0.02, L3MissPKI: 0.01,
		L1IMissPKI: 0.01, L2IMissPKI: 0.003,
		TLBDMissPKI: 0.001, TLBIMissPKI: 0.0005,
		PrefPKI: 0.02, PrefMissPKI: 0.005,
		BaseIPC: 3.4, FullIssueFrac: 0.62, FullRetireFrac: 0.55,
		MLP: 1, SnoopPKI: 0.01, SnoopThreadScale: 0.0005,
		ParallelEff: 1.0,
	}},
})

// Sqrt chains scalar double-precision square roots; the divider unit
// serializes the pipeline, so IPC — and power — is low. The paper
// observes the minimum model error on this kernel.
var Sqrt = register(&Workload{
	Name:        "sqrt",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "dependent scalar DP square-root chain (divider-bound)",
	Phases: []Phase{{
		Name:     "sqrt",
		Weight:   1,
		LoadFrac: 0.02, StoreFrac: 0.01,
		CondBranchFrac: 0.05, UncondBranchFrac: 0.005,
		FPScalarDPFrac: 0.55,
		TakenFrac:      0.95, MispFrac: 0.001,
		L1DMissPKI: 0.02, L2DMissPKI: 0.008, L3MissPKI: 0.003,
		L1IMissPKI: 0.005, L2IMissPKI: 0.001,
		TLBDMissPKI: 0.0005, TLBIMissPKI: 0.0003,
		PrefPKI: 0.01, PrefMissPKI: 0.002,
		BaseIPC: 0.28, FullIssueFrac: 0.01, FullRetireFrac: 0.01,
		MLP: 1, SnoopPKI: 0.005, SnoopThreadScale: 0.0002,
		ParallelEff: 1.0,
	}},
})

// Matmul is a blocked DGEMM: AVX-heavy with good cache blocking.
var Matmul = register(&Workload{
	Name:        "matmul",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "blocked double-precision matrix multiply (AVX, cache-blocked)",
	Phases: []Phase{{
		Name:     "dgemm",
		Weight:   1,
		LoadFrac: 0.28, StoreFrac: 0.06,
		CondBranchFrac: 0.04, UncondBranchFrac: 0.005,
		VecDPFrac: 0.46, VecWidthDP: 4,
		TakenFrac: 0.92, MispFrac: 0.002,
		L1DMissPKI: 9, L2DMissPKI: 2.2, L3MissPKI: 0.6,
		L1IMissPKI: 0.02, L2IMissPKI: 0.004,
		TLBDMissPKI: 0.06, TLBIMissPKI: 0.0008,
		PrefPKI: 6, PrefMissPKI: 1.2,
		BaseIPC: 3.1, FullIssueFrac: 0.68, FullRetireFrac: 0.6,
		MLP: 4, SnoopPKI: 0.05, SnoopThreadScale: 0.004,
		ParallelEff: 0.97,
	}},
})

// Sinus evaluates sin(x) in a loop — a libm-style polynomial kernel.
var Sinus = register(&Workload{
	Name:        "sinus",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "scalar sine evaluation loop (polynomial + range reduction)",
	Phases: []Phase{{
		Name:     "sin",
		Weight:   1,
		LoadFrac: 0.12, StoreFrac: 0.04,
		CondBranchFrac: 0.11, UncondBranchFrac: 0.02,
		FPScalarDPFrac: 0.42, FPScalarSPFrac: 0.02,
		TakenFrac: 0.7, MispFrac: 0.008,
		L1DMissPKI: 0.3, L2DMissPKI: 0.08, L3MissPKI: 0.02,
		L1IMissPKI: 0.05, L2IMissPKI: 0.01,
		TLBDMissPKI: 0.002, TLBIMissPKI: 0.001,
		PrefPKI: 0.1, PrefMissPKI: 0.02,
		BaseIPC: 1.9, FullIssueFrac: 0.22, FullRetireFrac: 0.18,
		MLP: 1.2, SnoopPKI: 0.01, SnoopThreadScale: 0.0005,
		ParallelEff: 1.0,
	}},
})

// MemoryRead streams reads over a working set far beyond the LLC.
var MemoryRead = register(&Workload{
	Name:        "memory_read",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "streaming reads over a 4 GiB buffer (DRAM-bandwidth-bound)",
	Phases: []Phase{{
		Name:     "stream-read",
		Weight:   1,
		LoadFrac: 0.55, StoreFrac: 0.02,
		CondBranchFrac: 0.06, UncondBranchFrac: 0.005,
		TakenFrac: 0.97, MispFrac: 0.0008,
		L1DMissPKI: 68, L2DMissPKI: 62, L3MissPKI: 58,
		L1IMissPKI: 0.01, L2IMissPKI: 0.002,
		TLBDMissPKI: 1.1, TLBIMissPKI: 0.0005,
		PrefPKI: 66, PrefMissPKI: 52,
		BaseIPC: 2.6, FullIssueFrac: 0.12, FullRetireFrac: 0.1,
		MLP: 9, SnoopPKI: 0.3, SnoopThreadScale: 0.02,
		ParallelEff: 0.92,
	}},
})

// MemoryReadL3 streams reads over a working set that fits the shared
// L3 but not L2: heavy L2-miss traffic that is satisfied on-chip, with
// almost no DRAM accesses. Separates ring/L3 activity from memory
// controller activity.
var MemoryReadL3 = register(&Workload{
	Name:        "memory_read_l3",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "streaming reads over an L3-resident buffer (ring-bound, no DRAM)",
	Phases: []Phase{{
		Name:     "stream-l3",
		Weight:   1,
		LoadFrac: 0.55, StoreFrac: 0.02,
		CondBranchFrac: 0.06, UncondBranchFrac: 0.005,
		TakenFrac: 0.97, MispFrac: 0.0008,
		L1DMissPKI: 66, L2DMissPKI: 58, L3MissPKI: 1.5,
		L1IMissPKI: 0.01, L2IMissPKI: 0.002,
		TLBDMissPKI: 0.25, TLBIMissPKI: 0.0005,
		PrefPKI: 60, PrefMissPKI: 40,
		BaseIPC: 2.6, FullIssueFrac: 0.14, FullRetireFrac: 0.12,
		MLP: 9, SnoopPKI: 0.4, SnoopThreadScale: 0.03,
		ParallelEff: 0.95,
	}},
})

// MemoryWrite streams non-temporal-free stores (RFO traffic).
var MemoryWrite = register(&Workload{
	Name:        "memory_write",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "streaming stores over a 4 GiB buffer (write-bandwidth-bound)",
	Phases: []Phase{{
		Name:     "stream-write",
		Weight:   1,
		LoadFrac: 0.06, StoreFrac: 0.5,
		CondBranchFrac: 0.06, UncondBranchFrac: 0.005,
		TakenFrac: 0.97, MispFrac: 0.0008,
		L1DMissPKI: 64, L2DMissPKI: 58, L3MissPKI: 54,
		StoreMissShare: 0.92,
		L1IMissPKI:     0.01, L2IMissPKI: 0.002,
		TLBDMissPKI: 1.0, TLBIMissPKI: 0.0005,
		PrefPKI: 30, PrefMissPKI: 22,
		BaseIPC: 2.2, FullIssueFrac: 0.1, FullRetireFrac: 0.08,
		MLP: 7, MemWriteCycFrac: 0.3,
		SnoopPKI: 0.5, SnoopThreadScale: 0.03,
		ParallelEff: 0.9,
	}},
})

// MemoryCopy combines the two streams.
var MemoryCopy = register(&Workload{
	Name:        "memory_copy",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "memcpy-style copy between two 2 GiB buffers",
	Phases: []Phase{{
		Name:     "copy",
		Weight:   1,
		LoadFrac: 0.3, StoreFrac: 0.28,
		CondBranchFrac: 0.06, UncondBranchFrac: 0.005,
		TakenFrac: 0.97, MispFrac: 0.0008,
		L1DMissPKI: 66, L2DMissPKI: 60, L3MissPKI: 55,
		StoreMissShare: 0.5,
		L1IMissPKI:     0.01, L2IMissPKI: 0.002,
		TLBDMissPKI: 1.05, TLBIMissPKI: 0.0005,
		PrefPKI: 50, PrefMissPKI: 40,
		BaseIPC: 2.4, FullIssueFrac: 0.11, FullRetireFrac: 0.09,
		MLP: 8, MemWriteCycFrac: 0.15,
		SnoopPKI: 0.4, SnoopThreadScale: 0.025,
		ParallelEff: 0.9,
	}},
})

// Addpd saturates the AVX add pipes from L1-resident data.
var Addpd = register(&Workload{
	Name:        "addpd",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "256-bit packed DP add loop on L1-resident data",
	Phases: []Phase{{
		Name:     "addpd",
		Weight:   1,
		LoadFrac: 0.22, StoreFrac: 0.1,
		CondBranchFrac: 0.03, UncondBranchFrac: 0.003,
		VecDPFrac: 0.58, VecWidthDP: 4,
		TakenFrac: 0.97, MispFrac: 0.0005,
		L1DMissPKI: 0.1, L2DMissPKI: 0.03, L3MissPKI: 0.01,
		L1IMissPKI: 0.005, L2IMissPKI: 0.001,
		TLBDMissPKI: 0.001, TLBIMissPKI: 0.0003,
		PrefPKI: 0.05, PrefMissPKI: 0.01,
		BaseIPC: 3.8, FullIssueFrac: 0.88, FullRetireFrac: 0.82,
		MLP: 1, SnoopPKI: 0.005, SnoopThreadScale: 0.0002,
		ParallelEff: 1.0,
	}},
})

// Mulpd saturates the AVX multiply pipes; slightly hotter than addpd.
var Mulpd = register(&Workload{
	Name:        "mulpd",
	Class:       Synthetic,
	ThreadSweep: roco2Sweep,
	Description: "256-bit packed DP multiply loop on L1-resident data",
	Phases: []Phase{{
		Name:     "mulpd",
		Weight:   1,
		LoadFrac: 0.22, StoreFrac: 0.1,
		CondBranchFrac: 0.03, UncondBranchFrac: 0.003,
		VecDPFrac: 0.6, VecWidthDP: 4,
		TakenFrac: 0.97, MispFrac: 0.0005,
		L1DMissPKI: 0.1, L2DMissPKI: 0.03, L3MissPKI: 0.01,
		L1IMissPKI: 0.005, L2IMissPKI: 0.001,
		TLBDMissPKI: 0.001, TLBIMissPKI: 0.0003,
		PrefPKI: 0.05, PrefMissPKI: 0.01,
		BaseIPC: 3.75, FullIssueFrac: 0.86, FullRetireFrac: 0.8,
		MLP: 1, SnoopPKI: 0.005, SnoopThreadScale: 0.0002,
		ParallelEff: 1.0,
	}},
})
