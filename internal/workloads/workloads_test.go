package workloads

import (
	"strings"
	"testing"
)

func TestRegistryComposition(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("empty registry")
	}
	var synth, spec, excluded int
	for _, w := range all {
		switch w.Class {
		case Synthetic:
			synth++
		case SPEC:
			spec++
		}
		if w.Excluded {
			excluded++
		}
	}
	if synth != 11 {
		t.Fatalf("%d synthetic kernels, want 11", synth)
	}
	if spec != 14 {
		t.Fatalf("%d SPEC proxies, want 14 (the full OMP2012 suite)", spec)
	}
	// The paper excludes exactly kdtree, imagick, smithwa, botsspar.
	if excluded != 4 {
		t.Fatalf("%d excluded workloads, want 4", excluded)
	}
	for _, name := range []string{"kdtree", "imagick", "smithwa", "botsspar"} {
		w := MustByName(name)
		if !w.Excluded {
			t.Fatalf("%s must be excluded (paper §IV)", name)
		}
	}
}

func TestActiveExcludesExcluded(t *testing.T) {
	for _, w := range Active() {
		if w.Excluded {
			t.Fatalf("Active returned excluded workload %s", w.Name)
		}
	}
	if len(Active())+4 != len(All()) {
		t.Fatalf("Active (%d) + 4 exclusions != All (%d)", len(Active()), len(All()))
	}
}

func TestActiveByClass(t *testing.T) {
	syn := ActiveByClass(Synthetic)
	spec := ActiveByClass(SPEC)
	if len(syn) != 11 {
		t.Fatalf("%d active synthetic, want 11", len(syn))
	}
	if len(spec) != 10 {
		t.Fatalf("%d active SPEC, want 10 (14 − 4 exclusions)", len(spec))
	}
	for _, w := range syn {
		if w.Class != Synthetic {
			t.Fatalf("%s misclassified", w.Name)
		}
	}
}

func TestPaperWorkloadsPresent(t *testing.T) {
	// Workloads the paper names explicitly.
	for _, name := range []string{"ilbdc", "sqrt", "md", "nab", "compute"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("paper workload %s missing: %v", name, err)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("not-a-workload"); err == nil {
		t.Fatal("unknown workload must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName must panic on unknown workload")
		}
	}()
	MustByName("not-a-workload")
}

func TestAllWorkloadsValidate(t *testing.T) {
	for _, w := range All() {
		if err := w.Validate(); err != nil {
			t.Fatalf("registered workload fails validation: %v", err)
		}
	}
}

func TestAllSortedAndStable(t *testing.T) {
	a := All()
	for i := 1; i < len(a); i++ {
		if a[i-1].Name >= a[i].Name {
			t.Fatalf("All not sorted at %d: %s >= %s", i, a[i-1].Name, a[i].Name)
		}
	}
}

func TestThreadSweeps(t *testing.T) {
	for _, w := range All() {
		switch w.Class {
		case Synthetic:
			if len(w.ThreadSweep) < 2 {
				t.Fatalf("synthetic kernel %s must sweep thread counts", w.Name)
			}
			if w.ThreadSweep[len(w.ThreadSweep)-1] != 24 {
				t.Fatalf("synthetic kernel %s must reach the full 24 threads", w.Name)
			}
		case SPEC:
			if len(w.ThreadSweep) != 1 || w.ThreadSweep[0] != 24 {
				t.Fatalf("SPEC proxy %s must run at exactly 24 threads", w.Name)
			}
		}
	}
}

func TestSPECWiderThanSynthetic(t *testing.T) {
	// The scenario-2 story requires SPEC proxies to exceed the
	// synthetic envelope on instruction-side pressure.
	maxSyn := func(get func(Phase) float64) float64 {
		var mx float64
		for _, w := range ActiveByClass(Synthetic) {
			for _, p := range w.Phases {
				if v := get(p); v > mx {
					mx = v
				}
			}
		}
		return mx
	}
	maxSpec := func(get func(Phase) float64) float64 {
		var mx float64
		for _, w := range ActiveByClass(SPEC) {
			for _, p := range w.Phases {
				if v := get(p); v > mx {
					mx = v
				}
			}
		}
		return mx
	}
	l1i := func(p Phase) float64 { return p.L1IMissPKI }
	tlbi := func(p Phase) float64 { return p.TLBIMissPKI }
	if maxSpec(l1i) < 4*maxSyn(l1i) {
		t.Fatalf("SPEC L1I pressure (%.2f) must far exceed synthetic (%.2f)", maxSpec(l1i), maxSyn(l1i))
	}
	if maxSpec(tlbi) < 4*maxSyn(tlbi) {
		t.Fatalf("SPEC iTLB pressure (%.2f) must far exceed synthetic (%.2f)", maxSpec(tlbi), maxSyn(tlbi))
	}
}

func TestValidateCatchesBadDefinitions(t *testing.T) {
	base := Phase{Name: "p", Weight: 1, BaseIPC: 1, MLP: 1, ParallelEff: 1}
	cases := []struct {
		name string
		mut  func(*Workload)
	}{
		{"empty name", func(w *Workload) { w.Name = "" }},
		{"no phases", func(w *Workload) { w.Phases = nil }},
		{"no threads", func(w *Workload) { w.ThreadSweep = nil }},
		{"bad threads", func(w *Workload) { w.ThreadSweep = []int{0} }},
		{"mix overflow", func(w *Workload) { w.Phases[0].LoadFrac = 0.9; w.Phases[0].StoreFrac = 0.3 }},
		{"zero IPC", func(w *Workload) { w.Phases[0].BaseIPC = 0 }},
		{"IPC too high", func(w *Workload) { w.Phases[0].BaseIPC = 5 }},
		{"L2 > L1 misses", func(w *Workload) { w.Phases[0].L1DMissPKI = 1; w.Phases[0].L2DMissPKI = 2 }},
		{"L3 > inbound", func(w *Workload) { w.Phases[0].L3MissPKI = 5 }},
		{"bad misp", func(w *Workload) { w.Phases[0].MispFrac = 1.5 }},
		{"bad MLP", func(w *Workload) { w.Phases[0].MLP = 0.5 }},
		{"bad eff", func(w *Workload) { w.Phases[0].ParallelEff = 0 }},
		{"bad duty", func(w *Workload) { w.Phases[0].DutyCycle = 1.5 }},
		{"negative weight", func(w *Workload) { w.Phases[0].Weight = -1 }},
	}
	for _, tc := range cases {
		w := &Workload{Name: "test", ThreadSweep: []int{1}, Phases: []Phase{base}}
		tc.mut(w)
		if err := w.Validate(); err == nil {
			t.Fatalf("case %q: Validate must fail", tc.name)
		}
	}
	// And the unmutated baseline passes.
	w := &Workload{Name: "test", ThreadSweep: []int{1}, Phases: []Phase{base}}
	if err := w.Validate(); err != nil {
		t.Fatalf("baseline workload must validate: %v", err)
	}
}

func TestClassString(t *testing.T) {
	if Synthetic.String() != "roco2" || !strings.Contains(SPEC.String(), "SPEC") {
		t.Fatal("Class.String wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class must still render")
	}
}

func TestDescriptionsPresent(t *testing.T) {
	for _, w := range All() {
		if w.Description == "" {
			t.Fatalf("workload %s lacks a description", w.Name)
		}
	}
}

func TestPhaseWeightsPositiveSum(t *testing.T) {
	for _, w := range All() {
		var sum float64
		for _, p := range w.Phases {
			sum += p.Weight
		}
		if sum <= 0 {
			t.Fatalf("workload %s has non-positive total phase weight", w.Name)
		}
	}
}
