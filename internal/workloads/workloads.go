// Package workloads defines the benchmark programs the simulated
// system executes: the roco2-style synthetic workload kernels and
// proxies for the SPEC OMP2012 applications used by the paper.
//
// A workload is described as one or more phases; each phase carries a
// statistical micro-architecture profile — instruction mix, cache and
// TLB miss intensities, branch behaviour, prefetcher activity, and
// scaling characteristics. internal/cpusim turns a (phase, frequency,
// thread count, duration) tuple into performance counter values and
// activity factors, and internal/power turns those activities into
// watts.
//
// The synthetic kernels deliberately have narrow, steady profiles
// (they are micro-kernels that exercise one corner of the machine),
// while the SPEC proxies have multiple phases and substantially wider
// dynamic ranges. This gap is what drives the paper's scenario-2
// degradation (training only on synthetic workloads) and the Table IV
// instability discussion.
package workloads

import (
	"fmt"
	"sort"
)

// Class partitions workloads into the two suites used by the paper.
type Class int

const (
	// Synthetic marks roco2-style workload generator kernels.
	Synthetic Class = iota
	// SPEC marks SPEC OMP2012 proxy applications.
	SPEC
)

func (c Class) String() string {
	switch c {
	case Synthetic:
		return "roco2"
	case SPEC:
		return "SPEC OMP2012"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Phase is a steady-state execution region with a fixed
// micro-architectural character. All *PKI fields are events per 1000
// retired instructions ("per kilo-instruction").
type Phase struct {
	Name string
	// Weight is the relative share of the workload's runtime spent in
	// this phase. Weights are normalized by the simulator; they need
	// not sum to 1.
	Weight float64

	// --- instruction mix (fractions of retired instructions) ---

	LoadFrac         float64 // load instructions
	StoreFrac        float64 // store instructions
	CondBranchFrac   float64 // conditional branches
	UncondBranchFrac float64 // unconditional branches (calls, jumps)
	FPScalarSPFrac   float64 // scalar single-precision FP instructions
	FPScalarDPFrac   float64 // scalar double-precision FP instructions
	VecSPFrac        float64 // packed/SIMD single-precision instructions
	VecDPFrac        float64 // packed/SIMD double-precision instructions

	// VecWidth is the average number of FP operations per vector
	// instruction (4 for 256-bit DP AVX, 8 for 256-bit SP AVX).
	VecWidthSP float64
	VecWidthDP float64

	// --- branch behaviour ---

	TakenFrac float64 // fraction of conditional branches taken
	MispFrac  float64 // fraction of conditional branches mispredicted

	// --- cache behaviour, demand misses per kilo-instruction ---

	L1DMissPKI float64 // L1D demand misses (→ L2)
	L2DMissPKI float64 // L2 data misses (→ L3); must be <= L1DMissPKI
	L3MissPKI  float64 // L3 misses (→ DRAM);  must be <= L2DMissPKI + PrefMissPKI
	L1IMissPKI float64 // L1I misses
	L2IMissPKI float64 // L2 instruction misses

	// StoreMissShare is the share of L1D/L2 data misses caused by
	// stores (RFO traffic).
	StoreMissShare float64

	// --- TLB ---

	TLBDMissPKI float64 // data TLB misses
	TLBIMissPKI float64 // instruction TLB misses

	// --- hardware prefetcher ---

	PrefPKI     float64 // prefetch requests issued per kilo-instruction
	PrefMissPKI float64 // prefetches missing the cache (PAPI_PRF_DM)

	// --- pipeline character ---

	// BaseIPC is the retirement throughput the phase sustains when no
	// memory stalls occur (instructions per cycle, up to 4 on Haswell).
	BaseIPC float64
	// FullIssueFrac / FullRetireFrac are the fractions of non-stalled
	// cycles issuing/retiring at maximum width.
	FullIssueFrac  float64
	FullRetireFrac float64
	// MLP is the average memory-level parallelism: how many outstanding
	// misses overlap, dividing the effective stall penalty.
	MLP float64
	// MemWriteCycFrac is the fraction of cycles spent waiting on
	// memory writes (PAPI_MEM_WCY).
	MemWriteCycFrac float64

	// --- coherence / sharing ---

	// SnoopPKI is the snoop request rate at a single thread;
	// SnoopThreadScale adds per-extra-thread snoop traffic
	// (sharing-induced coherence activity).
	SnoopPKI         float64
	SnoopThreadScale float64

	// --- scaling behaviour ---

	// ParallelEff in (0,1]: parallel efficiency at full thread count;
	// 1 means perfectly independent threads.
	ParallelEff float64
	// BWPerInstr is bytes of DRAM traffic per instruction implied by
	// the miss profile; the simulator derives it from L3MissPKI and
	// PrefMissPKI, but a phase can override it (e.g. streaming stores).
	BWPerInstrOverride float64

	// DutyCycle is the fraction of wall time the cores are unhalted in
	// this phase (idle kernels sit in deep C-states most of the time).
	// Zero means 1.0 (fully active).
	DutyCycle float64
}

// Workload is a named benchmark with one or more phases.
type Workload struct {
	Name  string
	Class Class
	// Excluded mirrors the paper's exclusion of kdtree, imagick,
	// smithwa and botsspar ("failed to build or crashed on our test
	// system"). Excluded workloads stay in the registry but are
	// skipped by the experiment harness.
	Excluded bool
	// ThreadSweep lists the thread counts the workload is executed
	// with. roco2 kernels sweep thread counts (the workload generator
	// steps through them); SPEC applications run at full width only.
	ThreadSweep []int
	Phases      []Phase
	// Description explains what the (real) workload does.
	Description string
}

// Validate checks internal consistency of the workload definition.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workloads: workload with empty name")
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("workloads: %s has no phases", w.Name)
	}
	if len(w.ThreadSweep) == 0 {
		return fmt.Errorf("workloads: %s has no thread sweep", w.Name)
	}
	for _, n := range w.ThreadSweep {
		if n < 1 {
			return fmt.Errorf("workloads: %s has invalid thread count %d", w.Name, n)
		}
	}
	for i, p := range w.Phases {
		if p.Weight < 0 {
			return fmt.Errorf("workloads: %s phase %d has negative weight", w.Name, i)
		}
		mix := p.LoadFrac + p.StoreFrac + p.CondBranchFrac + p.UncondBranchFrac +
			p.FPScalarSPFrac + p.FPScalarDPFrac + p.VecSPFrac + p.VecDPFrac
		if mix > 1.0001 {
			return fmt.Errorf("workloads: %s phase %q instruction mix sums to %.3f > 1", w.Name, p.Name, mix)
		}
		if p.BaseIPC <= 0 || p.BaseIPC > 4 {
			return fmt.Errorf("workloads: %s phase %q BaseIPC %.2f outside (0,4]", w.Name, p.Name, p.BaseIPC)
		}
		if p.L2DMissPKI > p.L1DMissPKI+1e-9 {
			return fmt.Errorf("workloads: %s phase %q L2 misses exceed L1 misses", w.Name, p.Name)
		}
		if p.L3MissPKI > p.L2DMissPKI+p.L2IMissPKI+p.PrefMissPKI+1e-9 {
			return fmt.Errorf("workloads: %s phase %q L3 misses exceed inbound traffic", w.Name, p.Name)
		}
		if p.MispFrac < 0 || p.MispFrac > 1 || p.TakenFrac < 0 || p.TakenFrac > 1 {
			return fmt.Errorf("workloads: %s phase %q branch fractions out of range", w.Name, p.Name)
		}
		if p.MLP < 1 && p.MLP != 0 {
			return fmt.Errorf("workloads: %s phase %q MLP %.2f below 1", w.Name, p.Name, p.MLP)
		}
		if p.ParallelEff <= 0 || p.ParallelEff > 1 {
			return fmt.Errorf("workloads: %s phase %q ParallelEff %.2f outside (0,1]", w.Name, p.Name, p.ParallelEff)
		}
		if p.DutyCycle < 0 || p.DutyCycle > 1 {
			return fmt.Errorf("workloads: %s phase %q DutyCycle out of range", w.Name, p.Name)
		}
	}
	return nil
}

// registry holds all defined workloads, keyed by name.
var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate workload " + w.Name)
	}
	registry[w.Name] = w
	return w
}

// ByName returns the workload with the given name.
func ByName(name string) (*Workload, error) {
	if w, ok := registry[name]; ok {
		return w, nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// MustByName is ByName that panics on unknown names.
func MustByName(name string) *Workload {
	w, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// All returns every registered workload sorted by name, including
// excluded ones.
func All() []*Workload {
	out := make([]*Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Active returns all non-excluded workloads sorted by name.
func Active() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if !w.Excluded {
			out = append(out, w)
		}
	}
	return out
}

// ActiveByClass returns all non-excluded workloads of the given class,
// sorted by name.
func ActiveByClass(c Class) []*Workload {
	var out []*Workload
	for _, w := range Active() {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}
