package workloads

// SPEC OMP2012 proxy applications. Each proxy reproduces the
// macroscopic micro-architectural character of the corresponding SPEC
// application at the level of the phase-profile statistics the paper's
// workflow consumes — multi-phase behaviour, substantially wider
// dynamic ranges than the roco2 kernels (instruction footprints, TLB
// pressure, coherence traffic), and imperfect parallel scaling at 24
// threads.
//
// The four applications the paper excluded because they "failed to
// build or crashed on our test system" (kdtree, imagick, smithwa,
// botsspar) are registered with Excluded=true and skipped by the
// experiment harness, mirroring the paper's evaluated set.

// specThreads: SPEC OMP2012 runs use all cores of the node.
var specThreads = []int{24}

// MD — 350.md, molecular dynamics (Fortran). Compute-dominated with
// data-dependent neighbor-list branches; the paper singles out md (with
// compute) as a kernel where BR_MSP carries real information, and notes
// md is consistently overestimated by a synthetic-only model.
var MD = register(&Workload{
	Name:        "md",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "350.md proxy: molecular dynamics, FP-heavy with branchy neighbor lists",
	Phases: []Phase{
		{
			Name: "force", Weight: 0.7,
			LoadFrac: 0.26, StoreFrac: 0.08,
			CondBranchFrac: 0.09, UncondBranchFrac: 0.015,
			FPScalarDPFrac: 0.22, VecDPFrac: 0.18, VecWidthDP: 4,
			TakenFrac: 0.55, MispFrac: 0.052,
			L1DMissPKI: 6, L2DMissPKI: 1.4, L3MissPKI: 0.4,
			L1IMissPKI: 0.8, L2IMissPKI: 0.15,
			TLBDMissPKI: 0.12, TLBIMissPKI: 0.05,
			PrefPKI: 3, PrefMissPKI: 0.8,
			BaseIPC: 2.4, FullIssueFrac: 0.4, FullRetireFrac: 0.34,
			MLP: 2.5, SnoopPKI: 0.6, SnoopThreadScale: 0.05,
			ParallelEff: 0.93,
		},
		{
			Name: "neighbor", Weight: 0.3,
			LoadFrac: 0.34, StoreFrac: 0.1,
			CondBranchFrac: 0.17, UncondBranchFrac: 0.02,
			FPScalarDPFrac: 0.08,
			TakenFrac:      0.5, MispFrac: 0.085,
			L1DMissPKI: 14, L2DMissPKI: 4, L3MissPKI: 1.2,
			L1IMissPKI: 1.2, L2IMissPKI: 0.25,
			TLBDMissPKI: 0.5, TLBIMissPKI: 0.08,
			PrefPKI: 2, PrefMissPKI: 0.6,
			BaseIPC: 1.6, FullIssueFrac: 0.12, FullRetireFrac: 0.1,
			MLP: 2, SnoopPKI: 1.2, SnoopThreadScale: 0.09,
			ParallelEff: 0.88,
		},
	},
})

// Bwaves — 351.bwaves, blast-wave CFD. Stencil sweeps over large grids:
// bandwidth-bound, prefetch-friendly.
var Bwaves = register(&Workload{
	Name:        "bwaves",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "351.bwaves proxy: CFD stencil sweeps, DRAM-bandwidth-bound",
	Phases: []Phase{
		{
			Name: "sweep", Weight: 0.8,
			LoadFrac: 0.38, StoreFrac: 0.12,
			CondBranchFrac: 0.05, UncondBranchFrac: 0.01,
			VecDPFrac: 0.26, VecWidthDP: 4,
			TakenFrac: 0.9, MispFrac: 0.004,
			L1DMissPKI: 42, L2DMissPKI: 30, L3MissPKI: 24,
			L1IMissPKI: 0.5, L2IMissPKI: 0.1,
			TLBDMissPKI: 1.6, TLBIMissPKI: 0.04,
			PrefPKI: 38, PrefMissPKI: 26,
			BaseIPC: 2.5, FullIssueFrac: 0.2, FullRetireFrac: 0.16,
			MLP: 6, SnoopPKI: 1.5, SnoopThreadScale: 0.12,
			ParallelEff: 0.82,
		},
		{
			Name: "solve", Weight: 0.2,
			LoadFrac: 0.3, StoreFrac: 0.1,
			CondBranchFrac: 0.07, UncondBranchFrac: 0.012,
			FPScalarDPFrac: 0.2, VecDPFrac: 0.12, VecWidthDP: 4,
			TakenFrac: 0.8, MispFrac: 0.012,
			L1DMissPKI: 16, L2DMissPKI: 7, L3MissPKI: 3.5,
			L1IMissPKI: 0.6, L2IMissPKI: 0.12,
			TLBDMissPKI: 0.7, TLBIMissPKI: 0.05,
			PrefPKI: 10, PrefMissPKI: 4,
			BaseIPC: 2.1, FullIssueFrac: 0.25, FullRetireFrac: 0.2,
			MLP: 3.5, SnoopPKI: 1.0, SnoopThreadScale: 0.08,
			ParallelEff: 0.85,
		},
	},
})

// Nab — 352.nab, molecular modeling in C. Mixed compute with pointer
// chasing; the paper notes nab (with md) is overestimated by
// synthetic-only training.
var Nab = register(&Workload{
	Name:        "nab",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "352.nab proxy: molecular modeling, mixed FP and pointer-chasing",
	Phases: []Phase{
		{
			Name: "mme", Weight: 0.6,
			LoadFrac: 0.3, StoreFrac: 0.09,
			CondBranchFrac: 0.11, UncondBranchFrac: 0.025,
			FPScalarDPFrac: 0.24,
			TakenFrac:      0.58, MispFrac: 0.04,
			L1DMissPKI: 9, L2DMissPKI: 2.6, L3MissPKI: 0.9,
			L1IMissPKI: 2.5, L2IMissPKI: 0.5,
			TLBDMissPKI: 0.35, TLBIMissPKI: 0.12,
			PrefPKI: 3, PrefMissPKI: 0.9,
			BaseIPC: 1.9, FullIssueFrac: 0.22, FullRetireFrac: 0.18,
			MLP: 2.2, SnoopPKI: 0.8, SnoopThreadScale: 0.06,
			ParallelEff: 0.9,
		},
		{
			Name: "pairlist", Weight: 0.4,
			LoadFrac: 0.36, StoreFrac: 0.07,
			CondBranchFrac: 0.15, UncondBranchFrac: 0.03,
			FPScalarDPFrac: 0.06,
			TakenFrac:      0.52, MispFrac: 0.06,
			L1DMissPKI: 18, L2DMissPKI: 6, L3MissPKI: 2.2,
			L1IMissPKI: 3, L2IMissPKI: 0.6,
			TLBDMissPKI: 0.9, TLBIMissPKI: 0.15,
			PrefPKI: 2, PrefMissPKI: 0.7,
			BaseIPC: 1.4, FullIssueFrac: 0.09, FullRetireFrac: 0.07,
			MLP: 1.8, SnoopPKI: 1.4, SnoopThreadScale: 0.1,
			ParallelEff: 0.86,
		},
	},
})

// Bt331 — 357.bt331, NAS BT block-tridiagonal solver.
var Bt331 = register(&Workload{
	Name:        "bt331",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "357.bt331 proxy: block-tridiagonal CFD solver",
	Phases: []Phase{
		{
			Name: "rhs", Weight: 0.5,
			LoadFrac: 0.34, StoreFrac: 0.13,
			CondBranchFrac: 0.05, UncondBranchFrac: 0.01,
			VecDPFrac: 0.2, VecWidthDP: 4, FPScalarDPFrac: 0.1,
			TakenFrac: 0.88, MispFrac: 0.006,
			L1DMissPKI: 22, L2DMissPKI: 11, L3MissPKI: 6,
			L1IMissPKI: 1.8, L2IMissPKI: 0.35,
			TLBDMissPKI: 0.8, TLBIMissPKI: 0.1,
			PrefPKI: 16, PrefMissPKI: 7,
			BaseIPC: 2.3, FullIssueFrac: 0.3, FullRetireFrac: 0.25,
			MLP: 4, SnoopPKI: 1.1, SnoopThreadScale: 0.09,
			ParallelEff: 0.87,
		},
		{
			Name: "solve", Weight: 0.5,
			LoadFrac: 0.3, StoreFrac: 0.11,
			CondBranchFrac: 0.06, UncondBranchFrac: 0.012,
			FPScalarDPFrac: 0.26, VecDPFrac: 0.08, VecWidthDP: 4,
			TakenFrac: 0.85, MispFrac: 0.01,
			L1DMissPKI: 10, L2DMissPKI: 3.5, L3MissPKI: 1.4,
			L1IMissPKI: 2.2, L2IMissPKI: 0.4,
			TLBDMissPKI: 0.4, TLBIMissPKI: 0.12,
			PrefPKI: 6, PrefMissPKI: 1.8,
			BaseIPC: 2.0, FullIssueFrac: 0.26, FullRetireFrac: 0.21,
			MLP: 2.8, SnoopPKI: 0.9, SnoopThreadScale: 0.07,
			ParallelEff: 0.88,
		},
	},
})

// Botsalgn — 358.botsalgn, protein alignment with OpenMP tasks.
// Integer- and branch-heavy with significant instruction footprint.
var Botsalgn = register(&Workload{
	Name:        "botsalgn",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "358.botsalgn proxy: task-parallel protein alignment, integer/branch heavy",
	Phases: []Phase{{
		Name: "align", Weight: 1,
		LoadFrac: 0.32, StoreFrac: 0.1,
		CondBranchFrac: 0.19, UncondBranchFrac: 0.04,
		FPScalarSPFrac: 0.04, VecSPFrac: 0.02, VecWidthSP: 8,
		TakenFrac: 0.45, MispFrac: 0.032,
		L1DMissPKI: 5, L2DMissPKI: 1.2, L3MissPKI: 0.3,
		L1IMissPKI: 4, L2IMissPKI: 0.9,
		TLBDMissPKI: 0.2, TLBIMissPKI: 0.25,
		PrefPKI: 1.5, PrefMissPKI: 0.4,
		BaseIPC: 2.2, FullIssueFrac: 0.3, FullRetireFrac: 0.26,
		MLP: 1.6, SnoopPKI: 0.7, SnoopThreadScale: 0.06,
		ParallelEff: 0.94,
	}},
})

// Ilbdc — 360.ilbdc, lattice-Boltzmann flow solver. The most
// bandwidth-hungry SPEC workload with irregular (list-based) access —
// high data TLB pressure. The paper observes its *maximum* model error
// on ilbdc.
var Ilbdc = register(&Workload{
	Name:        "ilbdc",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "360.ilbdc proxy: lattice-Boltzmann kernel, extreme bandwidth + dTLB pressure",
	Phases: []Phase{{
		Name: "stream-collide", Weight: 1,
		LoadFrac: 0.42, StoreFrac: 0.2,
		CondBranchFrac: 0.04, UncondBranchFrac: 0.008,
		FPScalarDPFrac: 0.18,
		TakenFrac:      0.93, MispFrac: 0.003,
		L1DMissPKI: 58, L2DMissPKI: 46, L3MissPKI: 40,
		StoreMissShare: 0.35,
		L1IMissPKI:     0.4, L2IMissPKI: 0.08,
		TLBDMissPKI: 3.2, TLBIMissPKI: 0.03,
		PrefPKI: 30, PrefMissPKI: 18,
		BaseIPC: 2.2, FullIssueFrac: 0.1, FullRetireFrac: 0.08,
		MLP: 5, MemWriteCycFrac: 0.12,
		SnoopPKI: 2.2, SnoopThreadScale: 0.16,
		ParallelEff: 0.75,
	}},
})

// Fma3d — 362.fma3d, finite-element crash simulation. Enormous code
// footprint: the instruction-side caches and iTLB dominate its
// character.
var Fma3d = register(&Workload{
	Name:        "fma3d",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "362.fma3d proxy: FEM crash simulation, large instruction footprint",
	Phases: []Phase{
		{
			Name: "element", Weight: 0.65,
			LoadFrac: 0.3, StoreFrac: 0.12,
			CondBranchFrac: 0.1, UncondBranchFrac: 0.05,
			FPScalarDPFrac: 0.2,
			TakenFrac:      0.6, MispFrac: 0.025,
			L1DMissPKI: 12, L2DMissPKI: 4, L3MissPKI: 1.6,
			L1IMissPKI: 14, L2IMissPKI: 3.5,
			TLBDMissPKI: 0.6, TLBIMissPKI: 0.9,
			PrefPKI: 5, PrefMissPKI: 1.5,
			BaseIPC: 1.5, FullIssueFrac: 0.1, FullRetireFrac: 0.08,
			MLP: 2, SnoopPKI: 1.0, SnoopThreadScale: 0.08,
			ParallelEff: 0.84,
		},
		{
			Name: "assembly", Weight: 0.35,
			LoadFrac: 0.34, StoreFrac: 0.16,
			CondBranchFrac: 0.12, UncondBranchFrac: 0.06,
			FPScalarDPFrac: 0.1,
			TakenFrac:      0.55, MispFrac: 0.035,
			L1DMissPKI: 20, L2DMissPKI: 8, L3MissPKI: 3.2,
			L1IMissPKI: 18, L2IMissPKI: 4.5,
			TLBDMissPKI: 1.0, TLBIMissPKI: 1.3,
			PrefPKI: 4, PrefMissPKI: 1.2,
			BaseIPC: 1.2, FullIssueFrac: 0.06, FullRetireFrac: 0.05,
			MLP: 1.8, SnoopPKI: 1.6, SnoopThreadScale: 0.12,
			ParallelEff: 0.8,
		},
	},
})

// Swim — 363.swim, shallow-water modeling. Classic streaming triad
// style loops: second most bandwidth-bound after ilbdc.
var Swim = register(&Workload{
	Name:        "swim",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "363.swim proxy: shallow-water stencils, streaming bandwidth-bound",
	Phases: []Phase{{
		Name: "calc", Weight: 1,
		LoadFrac: 0.4, StoreFrac: 0.16,
		CondBranchFrac: 0.04, UncondBranchFrac: 0.006,
		VecDPFrac: 0.22, VecWidthDP: 4,
		TakenFrac: 0.95, MispFrac: 0.002,
		L1DMissPKI: 50, L2DMissPKI: 38, L3MissPKI: 32,
		StoreMissShare: 0.3,
		L1IMissPKI:     0.2, L2IMissPKI: 0.04,
		TLBDMissPKI: 1.9, TLBIMissPKI: 0.02,
		PrefPKI: 44, PrefMissPKI: 30,
		BaseIPC: 2.4, FullIssueFrac: 0.14, FullRetireFrac: 0.11,
		MLP: 6, MemWriteCycFrac: 0.1,
		SnoopPKI: 1.8, SnoopThreadScale: 0.14,
		ParallelEff: 0.78,
	}},
})

// Mgrid331 — 370.mgrid331, multigrid solver. Alternates between
// bandwidth-bound fine grids and cache-resident coarse grids.
var Mgrid331 = register(&Workload{
	Name:        "mgrid331",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "370.mgrid331 proxy: multigrid V-cycles, alternating locality",
	Phases: []Phase{
		{
			Name: "fine", Weight: 0.6,
			LoadFrac: 0.38, StoreFrac: 0.12,
			CondBranchFrac: 0.04, UncondBranchFrac: 0.008,
			VecDPFrac: 0.24, VecWidthDP: 4,
			TakenFrac: 0.93, MispFrac: 0.003,
			L1DMissPKI: 36, L2DMissPKI: 24, L3MissPKI: 18,
			L1IMissPKI: 0.3, L2IMissPKI: 0.06,
			TLBDMissPKI: 1.2, TLBIMissPKI: 0.03,
			PrefPKI: 30, PrefMissPKI: 18,
			BaseIPC: 2.4, FullIssueFrac: 0.18, FullRetireFrac: 0.15,
			MLP: 5, SnoopPKI: 1.2, SnoopThreadScale: 0.1,
			ParallelEff: 0.8,
		},
		{
			Name: "coarse", Weight: 0.4,
			LoadFrac: 0.34, StoreFrac: 0.1,
			CondBranchFrac: 0.07, UncondBranchFrac: 0.015,
			VecDPFrac: 0.18, VecWidthDP: 4, FPScalarDPFrac: 0.08,
			TakenFrac: 0.85, MispFrac: 0.012,
			L1DMissPKI: 8, L2DMissPKI: 2, L3MissPKI: 0.5,
			L1IMissPKI: 0.4, L2IMissPKI: 0.08,
			TLBDMissPKI: 0.2, TLBIMissPKI: 0.04,
			PrefPKI: 5, PrefMissPKI: 1.2,
			BaseIPC: 2.6, FullIssueFrac: 0.35, FullRetireFrac: 0.3,
			MLP: 3, SnoopPKI: 0.8, SnoopThreadScale: 0.06,
			ParallelEff: 0.86,
		},
	},
})

// Applu331 — 371.applu331, SSOR solver with wavefront parallelism.
var Applu331 = register(&Workload{
	Name:        "applu331",
	Class:       SPEC,
	ThreadSweep: specThreads,
	Description: "371.applu331 proxy: SSOR wavefront solver",
	Phases: []Phase{
		{
			Name: "jacld-blts", Weight: 0.55,
			LoadFrac: 0.33, StoreFrac: 0.12,
			CondBranchFrac: 0.06, UncondBranchFrac: 0.012,
			FPScalarDPFrac: 0.22, VecDPFrac: 0.1, VecWidthDP: 4,
			TakenFrac: 0.82, MispFrac: 0.009,
			L1DMissPKI: 18, L2DMissPKI: 8, L3MissPKI: 4,
			L1IMissPKI: 1.6, L2IMissPKI: 0.3,
			TLBDMissPKI: 0.7, TLBIMissPKI: 0.09,
			PrefPKI: 12, PrefMissPKI: 5,
			BaseIPC: 1.9, FullIssueFrac: 0.2, FullRetireFrac: 0.16,
			MLP: 3, SnoopPKI: 1.3, SnoopThreadScale: 0.11,
			ParallelEff: 0.74,
		},
		{
			Name: "rhs", Weight: 0.45,
			LoadFrac: 0.36, StoreFrac: 0.13,
			CondBranchFrac: 0.05, UncondBranchFrac: 0.01,
			VecDPFrac: 0.2, VecWidthDP: 4,
			TakenFrac: 0.9, MispFrac: 0.005,
			L1DMissPKI: 26, L2DMissPKI: 14, L3MissPKI: 9,
			L1IMissPKI: 1.0, L2IMissPKI: 0.2,
			TLBDMissPKI: 0.9, TLBIMissPKI: 0.06,
			PrefPKI: 20, PrefMissPKI: 10,
			BaseIPC: 2.2, FullIssueFrac: 0.22, FullRetireFrac: 0.18,
			MLP: 4.5, SnoopPKI: 1.1, SnoopThreadScale: 0.09,
			ParallelEff: 0.8,
		},
	},
})

// --- Excluded applications (paper §IV: failed to build or crashed) ---

// Kdtree — 376.kdtree, excluded by the paper.
var Kdtree = register(&Workload{
	Name:        "kdtree",
	Class:       SPEC,
	Excluded:    true,
	ThreadSweep: specThreads,
	Description: "376.kdtree proxy (excluded: failed to build on the paper's system)",
	Phases: []Phase{{
		Name: "search", Weight: 1,
		LoadFrac: 0.4, StoreFrac: 0.05,
		CondBranchFrac: 0.2, UncondBranchFrac: 0.05,
		TakenFrac: 0.5, MispFrac: 0.09,
		L1DMissPKI: 25, L2DMissPKI: 12, L3MissPKI: 6,
		L1IMissPKI: 2, L2IMissPKI: 0.4,
		TLBDMissPKI: 2.5, TLBIMissPKI: 0.1,
		PrefPKI: 1, PrefMissPKI: 0.3,
		BaseIPC: 1.1, FullIssueFrac: 0.04, FullRetireFrac: 0.03,
		MLP: 1.5, SnoopPKI: 1.5, SnoopThreadScale: 0.12,
		ParallelEff: 0.85,
	}},
})

// Imagick — 367.imagick, excluded by the paper.
var Imagick = register(&Workload{
	Name:        "imagick",
	Class:       SPEC,
	Excluded:    true,
	ThreadSweep: specThreads,
	Description: "367.imagick proxy (excluded: crashed on the paper's system)",
	Phases: []Phase{{
		Name: "convolve", Weight: 1,
		LoadFrac: 0.35, StoreFrac: 0.12,
		CondBranchFrac: 0.08, UncondBranchFrac: 0.02,
		VecSPFrac: 0.25, VecWidthSP: 8,
		TakenFrac: 0.8, MispFrac: 0.01,
		L1DMissPKI: 10, L2DMissPKI: 3, L3MissPKI: 1,
		L1IMissPKI: 1.5, L2IMissPKI: 0.3,
		TLBDMissPKI: 0.3, TLBIMissPKI: 0.08,
		PrefPKI: 6, PrefMissPKI: 1.5,
		BaseIPC: 2.6, FullIssueFrac: 0.4, FullRetireFrac: 0.34,
		MLP: 3, SnoopPKI: 0.6, SnoopThreadScale: 0.05,
		ParallelEff: 0.92,
	}},
})

// Smithwa — 372.smithwa, excluded by the paper.
var Smithwa = register(&Workload{
	Name:        "smithwa",
	Class:       SPEC,
	Excluded:    true,
	ThreadSweep: specThreads,
	Description: "372.smithwa proxy (excluded: failed to build on the paper's system)",
	Phases: []Phase{{
		Name: "sw", Weight: 1,
		LoadFrac: 0.3, StoreFrac: 0.14,
		CondBranchFrac: 0.18, UncondBranchFrac: 0.03,
		TakenFrac: 0.55, MispFrac: 0.02,
		L1DMissPKI: 7, L2DMissPKI: 2, L3MissPKI: 0.6,
		L1IMissPKI: 1, L2IMissPKI: 0.2,
		TLBDMissPKI: 0.25, TLBIMissPKI: 0.06,
		PrefPKI: 3, PrefMissPKI: 0.8,
		BaseIPC: 2.3, FullIssueFrac: 0.32, FullRetireFrac: 0.28,
		MLP: 2, SnoopPKI: 0.9, SnoopThreadScale: 0.07,
		ParallelEff: 0.9,
	}},
})

// Botsspar — 359.botsspar, excluded by the paper.
var Botsspar = register(&Workload{
	Name:        "botsspar",
	Class:       SPEC,
	Excluded:    true,
	ThreadSweep: specThreads,
	Description: "359.botsspar proxy (excluded: crashed on the paper's system)",
	Phases: []Phase{{
		Name: "lu", Weight: 1,
		LoadFrac: 0.33, StoreFrac: 0.13,
		CondBranchFrac: 0.07, UncondBranchFrac: 0.02,
		FPScalarDPFrac: 0.2,
		TakenFrac:      0.75, MispFrac: 0.015,
		L1DMissPKI: 15, L2DMissPKI: 6, L3MissPKI: 2.5,
		L1IMissPKI: 2, L2IMissPKI: 0.4,
		TLBDMissPKI: 0.6, TLBIMissPKI: 0.1,
		PrefPKI: 8, PrefMissPKI: 3,
		BaseIPC: 1.8, FullIssueFrac: 0.18, FullRetireFrac: 0.15,
		MLP: 2.5, SnoopPKI: 1.2, SnoopThreadScale: 0.1,
		ParallelEff: 0.82,
	}},
})
