// Package rng provides small, deterministic pseudo-random number
// generators used throughout the simulator and the statistical
// experiment harness.
//
// Everything in this repository must be reproducible bit-for-bit, so no
// package in this module may use math/rand global state or wall-clock
// seeding. Instead, components receive an explicit *rng.Rand (or derive
// one with Split) whose entire state is a single uint64 seed.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator based on
// splitmix64 (Steele, Lea, Flood: "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014). It is tiny, fast, passes BigCrush when
// used as a 64-bit generator, and — crucially for this project — allows
// cheap, collision-resistant derivation of independent child streams.
//
// The zero value is a valid generator seeded with 0.
type Rand struct {
	seed  uint64 // initial seed, frozen for Split derivation
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{seed: seed, state: seed}
}

// Split derives an independent child generator from r and a label.
// Calling Split with the same label always yields the same child
// stream, regardless of how many values have been drawn from r.
// This is used to give each (workload, frequency, run) tuple its own
// stable noise stream.
func (r *Rand) Split(label uint64) *Rand {
	// Mix the label into the *initial* seed rather than the current
	// state so that Split is insensitive to draw order.
	return New(mix64(r.seed ^ mix64(label^0x9e3779b97f4a7c15)))
}

// Stream derives the RNG stream of task i of a campaign seeded with
// seed: New(seed ^ splitmix64(i)). It is the index-based counterpart
// of Split for parallel fan-outs — every task gets an independent,
// collision-resistant stream that depends only on (seed, i), never on
// which goroutine runs the task or in what order tasks execute. This
// is what keeps parallel acquisition noise bit-identical to the
// serial schedule.
func Stream(seed uint64, i uint64) *Rand {
	return New(seed ^ mix64(i+0x9e3779b97f4a7c15))
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be
	// overkill here; modulo bias is negligible for the small n used
	// in fold shuffling (n << 2^64).
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with mean 0 and standard
// deviation 1, using the Box–Muller transform. Two uniforms are drawn
// per call; the second variate is intentionally discarded to keep the
// generator stateless beyond its seed counter.
func (r *Rand) Norm() float64 {
	// Guard against u1 == 0 (log(0) = -Inf).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormScaled returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Jitter returns 1 + eps where eps is normally distributed with the
// given relative standard deviation, clamped to [1-4*rel, 1+4*rel] so a
// single extreme draw cannot produce a negative multiplier.
func (r *Rand) Jitter(rel float64) float64 {
	if rel == 0 {
		return 1
	}
	j := r.Norm() * rel
	if j > 4*rel {
		j = 4 * rel
	} else if j < -4*rel {
		j = -4 * rel
	}
	return 1 + j
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of the first n elements using
// the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// HashString maps a string to a stable 64-bit value (FNV-1a followed by
// a finalizing mix). Used to derive per-workload seeds from names.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}
