package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitOrderInsensitive(t *testing.T) {
	a := New(7)
	childBefore := a.Split(99)
	a.Uint64() // advance parent
	a.Uint64()
	childAfter := a.Split(99)
	for i := 0; i < 10; i++ {
		if childBefore.Uint64() != childAfter.Uint64() {
			t.Fatal("Split must be insensitive to parent draw position")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c1 := a.Split(1)
	c2 := a.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("children of different labels collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean far from 0.5: %v", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 7; k++ {
		if seen[k] == 0 {
			t.Fatalf("Intn(7) never produced %d", k)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(123)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance far from 1: %v", variance)
	}
}

func TestJitterClamp(t *testing.T) {
	r := New(9)
	const rel = 0.05
	for i := 0; i < 100000; i++ {
		j := r.Jitter(rel)
		if j < 1-4*rel-1e-12 || j > 1+4*rel+1e-12 {
			t.Fatalf("Jitter out of clamp range: %v", j)
		}
	}
	if j := r.Jitter(0); j != 1 {
		t.Fatalf("Jitter(0) = %v, want exactly 1", j)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(77)
	for _, n := range []int{1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	// Property: any seed yields a valid permutation of any size 1..50.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("compute") != HashString("compute") {
		t.Fatal("HashString must be deterministic")
	}
	if HashString("compute") == HashString("compute2") {
		t.Fatal("distinct strings should hash differently")
	}
	if HashString("") == HashString("a") {
		t.Fatal("empty string hash collided")
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle altered elements: %v", xs)
	}
}

func TestStreamDeterministicPerTask(t *testing.T) {
	a := Stream(42, 3)
	b := Stream(42, 3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Stream(seed, i) must be deterministic")
		}
	}
}

func TestStreamIndependentTasks(t *testing.T) {
	// Distinct task indices (and distinct seeds) must yield distinct
	// streams, and the base generator must not collide with task 0.
	seen := map[uint64]uint64{}
	record := func(label string, r *Rand) {
		v := r.Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("stream %s collides with stream index %d", label, prev)
		}
		seen[v] = uint64(len(seen))
	}
	record("base", New(42))
	for i := uint64(0); i < 64; i++ {
		record("task", Stream(42, i))
	}
	record("other-seed", Stream(43, 0))
}

func TestStreamOrderInsensitive(t *testing.T) {
	// Drawing from one task's stream must not perturb another's —
	// unlike sharing a single generator across tasks.
	r0 := Stream(7, 0)
	for i := 0; i < 100; i++ {
		r0.Uint64()
	}
	fresh := Stream(7, 1)
	ref := Stream(7, 1)
	if fresh.Uint64() != ref.Uint64() {
		t.Fatal("task streams must be independent of other tasks' draw counts")
	}
}
