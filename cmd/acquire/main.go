// Command acquire runs an acquisition campaign and exports the
// regression dataset as CSV — the artifact an analyst would feed into
// external statistics tooling.
//
// Usage:
//
//	acquire [-seed n] [-freqs 1200,2400] [-workloads compute,md]
//	        [-events LST_INS,TOT_CYC | -all-events] [-o dataset.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/buildinfo"
	"pmcpower/internal/cpusim"
	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

func main() {
	seed := flag.Uint64("seed", 42, "acquisition seed")
	freqsFlag := flag.String("freqs", "", "comma-separated frequencies in MHz (default: all P-states)")
	wlFlag := flag.String("workloads", "", "comma-separated workload names (default: all active)")
	evFlag := flag.String("events", "", "comma-separated PAPI event names (default: all 54 presets)")
	out := flag.String("o", "", "output file (default: stdout)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("acquire"))
		return
	}

	if err := run(*seed, *freqsFlag, *wlFlag, *evFlag, *out); err != nil {
		fmt.Fprintln(os.Stderr, "acquire:", err)
		os.Exit(1)
	}
}

func run(seed uint64, freqsFlag, wlFlag, evFlag, out string) error {
	platform := cpusim.HaswellEP()

	freqs := platform.Frequencies()
	if freqsFlag != "" {
		freqs = nil
		for _, tok := range strings.Split(freqsFlag, ",") {
			f, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad frequency %q: %w", tok, err)
			}
			freqs = append(freqs, f)
		}
	}

	wls := workloads.Active()
	if wlFlag != "" {
		wls = nil
		for _, tok := range strings.Split(wlFlag, ",") {
			w, err := workloads.ByName(strings.TrimSpace(tok))
			if err != nil {
				return err
			}
			wls = append(wls, w)
		}
	}

	var events []pmu.EventID
	if evFlag != "" {
		seen := make(map[pmu.EventID]bool)
		for _, tok := range strings.Split(evFlag, ",") {
			e, err := pmu.ByName(strings.TrimSpace(tok))
			if err != nil {
				return err
			}
			// Catch duplicates here so the message names the flag rather
			// than surfacing later from run planning.
			if seen[e.ID] {
				return fmt.Errorf("-events lists %s twice", e.Name)
			}
			seen[e.ID] = true
			events = append(events, e.ID)
		}
	}

	ds, err := acquisition.Acquire(acquisition.Options{Seed: seed, Events: events}, wls, freqs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "acquired %d experiments (%d workloads × %d frequencies)\n",
		len(ds.Rows), len(ds.Workloads()), len(freqs))

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return ds.WriteCSV(w)
}
