// Command pmcpowertop is a polling console dashboard over a running
// pmcpowerd: it fetches GET /v1/status and renders the served models'
// quality (drift state, windowed MAPE, signed bias, error quantiles,
// exemplar counts) as a plain text table, top-style.
//
// Usage:
//
//	pmcpowertop [-addr http://127.0.0.1:9120] [-interval 2s]
//	pmcpowertop -once                  # print one snapshot and exit
//	pmcpowertop -once -validate        # also verify the /v1/status shape (CI)
//
// -validate decodes the status document with unknown fields
// disallowed and checks the documented invariants; any violation is a
// non-zero exit, which CI uses to pin the /v1/status contract against
// a live daemon.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pmcpower/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9120", "pmcpowerd base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit (for scripting)")
	validate := flag.Bool("validate", false, "strictly validate the /v1/status document shape")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		status, err := fetchStatus(client, *addr, *validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmcpowertop:", err)
			os.Exit(1)
		}
		if *validate {
			if err := validateStatus(status); err != nil {
				fmt.Fprintln(os.Stderr, "pmcpowertop: status validation:", err)
				os.Exit(1)
			}
		}
		if !*once {
			// Clear screen and home the cursor between polls.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(render(status))
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetchStatus GETs /v1/status. With strict set, unknown fields in the
// document are an error — the shape check CI relies on.
func fetchStatus(client *http.Client, base string, strict bool) (serve.StatusResponse, error) {
	var status serve.StatusResponse
	resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/status")
	if err != nil {
		return status, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return status, err
	}
	if resp.StatusCode != http.StatusOK {
		return status, fmt.Errorf("/v1/status returned %d: %s", resp.StatusCode, raw)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(&status); err != nil {
		return status, fmt.Errorf("decoding /v1/status: %w", err)
	}
	return status, nil
}

// validateStatus checks the documented invariants of the status
// document beyond mere decodability.
func validateStatus(s serve.StatusResponse) error {
	if s.Service != "pmcpowerd" {
		return fmt.Errorf("service = %q, want pmcpowerd", s.Service)
	}
	if s.Version == "" {
		return fmt.Errorf("version is empty")
	}
	if !strings.HasPrefix(s.GoVersion, "go") {
		return fmt.Errorf("go_version = %q", s.GoVersion)
	}
	if s.UptimeS < 0 {
		return fmt.Errorf("uptime_s = %v", s.UptimeS)
	}
	switch s.Health.Status {
	case "ok", "warn", "alert", "unavailable":
	default:
		return fmt.Errorf("health.status = %q", s.Health.Status)
	}
	if s.Health.ServableModels != len(modelNames(s.Models)) {
		return fmt.Errorf("servable_models = %d but %d model names listed",
			s.Health.ServableModels, len(modelNames(s.Models)))
	}
	for _, q := range s.Quality {
		switch q.State {
		case "ok", "warn", "alert":
		default:
			return fmt.Errorf("quality[%s].state = %q", q.Model, q.State)
		}
		if q.WindowN < 0 || q.Exemplars < 0 {
			return fmt.Errorf("quality[%s] has negative counts", q.Model)
		}
	}
	return nil
}

func modelNames(models []serve.ModelInfo) map[string]bool {
	names := make(map[string]bool)
	for _, m := range models {
		names[m.Name] = true
	}
	return names
}

// render formats one status snapshot as the dashboard text.
func render(s serve.StatusResponse) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s (%s)  up %s  health: %s", s.Service, s.Version, s.GoVersion,
		(time.Duration(s.UptimeS * float64(time.Second))).Round(time.Second), s.Health.Status)
	if len(s.Health.AlertingModels) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(s.Health.AlertingModels, ", "))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "models: %d   sessions: %d active, %d created, %d evicted\n\n",
		s.Health.ServableModels, s.Sessions.Active, s.Sessions.Created, s.Sessions.Evicted)

	fmt.Fprintf(&sb, "%-16s %-6s %6s %8s %9s %8s %8s %8s %9s %5s %6s %5s\n",
		"MODEL", "STATE", "N", "MAPE%", "BIAS W", "P50 W", "P95 W", "P99 W", "LABELLED", "WARN", "ALERT", "EXMP")
	if len(s.Quality) == 0 {
		sb.WriteString("(no labelled samples yet — stream power_w-labelled samples to /v1/estimate)\n")
	}
	for _, q := range s.Quality {
		fmt.Fprintf(&sb, "%-16s %-6s %6d %8.2f %+9.2f %8.2f %8.2f %8.2f %9d %5d %6d %5d\n",
			q.Model, q.State, q.WindowN, q.WindowMAPEPct, q.WindowBiasW,
			q.ErrP50W, q.ErrP95W, q.ErrP99W,
			q.LabelledSamples, q.WarnTransitions, q.AlertTransitions, q.Exemplars)
	}
	return sb.String()
}
