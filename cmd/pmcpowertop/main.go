// Command pmcpowertop is a polling console dashboard over a running
// pmcpowerd: it fetches GET /v1/status and renders the served models'
// quality (drift state, windowed MAPE, signed bias, error quantiles,
// exemplar counts) as a plain text table, top-style.
//
// Usage:
//
//	pmcpowertop [-addr http://127.0.0.1:9120] [-interval 2s]
//	pmcpowertop -once                  # print one snapshot and exit
//	pmcpowertop -once -validate        # also verify the /v1/status shape (CI)
//
// -validate decodes the status document with unknown fields
// disallowed and checks the documented invariants; any violation is a
// non-zero exit, which CI uses to pin the /v1/status contract against
// a live daemon. It applies the same strict decode to /debug/requests
// (the flight-recorder view), so the request-tracing contract is
// pinned too.
//
// Each snapshot also renders the daemon's recent requests — trace ID,
// method, path, status, duration, retention — from /debug/requests,
// so a drifting model or a latency outlier can be chased to a
// concrete trace without leaving the terminal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pmcpower/internal/buildinfo"
	"pmcpower/internal/obs"
	"pmcpower/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9120", "pmcpowerd base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit (for scripting)")
	validate := flag.Bool("validate", false, "strictly validate the /v1/status document shape")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("pmcpowertop"))
		return
	}

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		status, err := fetchStatus(client, *addr, *validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmcpowertop:", err)
			os.Exit(1)
		}
		if *validate {
			if err := validateStatus(status); err != nil {
				fmt.Fprintln(os.Stderr, "pmcpowertop: status validation:", err)
				os.Exit(1)
			}
		}
		reqs, err := fetchRequests(client, *addr, *validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmcpowertop:", err)
			os.Exit(1)
		}
		if *validate {
			if err := validateRequests(reqs); err != nil {
				fmt.Fprintln(os.Stderr, "pmcpowertop: requests validation:", err)
				os.Exit(1)
			}
		}
		if !*once {
			// Clear screen and home the cursor between polls.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(render(status))
		fmt.Print(renderRequests(reqs))
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetchStatus GETs /v1/status. With strict set, unknown fields in the
// document are an error — the shape check CI relies on.
func fetchStatus(client *http.Client, base string, strict bool) (serve.StatusResponse, error) {
	var status serve.StatusResponse
	resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/status")
	if err != nil {
		return status, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return status, err
	}
	if resp.StatusCode != http.StatusOK {
		return status, fmt.Errorf("/v1/status returned %d: %s", resp.StatusCode, raw)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(&status); err != nil {
		return status, fmt.Errorf("decoding /v1/status: %w", err)
	}
	return status, nil
}

// validateStatus checks the documented invariants of the status
// document beyond mere decodability.
func validateStatus(s serve.StatusResponse) error {
	if s.Service != "pmcpowerd" {
		return fmt.Errorf("service = %q, want pmcpowerd", s.Service)
	}
	if s.Version == "" {
		return fmt.Errorf("version is empty")
	}
	if !strings.HasPrefix(s.GoVersion, "go") {
		return fmt.Errorf("go_version = %q", s.GoVersion)
	}
	if s.UptimeS < 0 {
		return fmt.Errorf("uptime_s = %v", s.UptimeS)
	}
	switch s.Health.Status {
	case "ok", "warn", "alert", "unavailable":
	default:
		return fmt.Errorf("health.status = %q", s.Health.Status)
	}
	if s.Health.ServableModels != len(modelNames(s.Models)) {
		return fmt.Errorf("servable_models = %d but %d model names listed",
			s.Health.ServableModels, len(modelNames(s.Models)))
	}
	if s.Sessions.Shards < 1 {
		return fmt.Errorf("sessions.shards = %d, want >= 1", s.Sessions.Shards)
	}
	if s.Sessions.Shards&(s.Sessions.Shards-1) != 0 {
		return fmt.Errorf("sessions.shards = %d, want a power of two", s.Sessions.Shards)
	}
	if len(s.Sessions.PerShard) != s.Sessions.Shards {
		return fmt.Errorf("per_shard has %d entries for %d shards", len(s.Sessions.PerShard), s.Sessions.Shards)
	}
	perShard := 0
	for i, n := range s.Sessions.PerShard {
		if n < 0 {
			return fmt.Errorf("per_shard[%d] = %d", i, n)
		}
		perShard += n
	}
	if perShard != s.Sessions.Active {
		return fmt.Errorf("per_shard sums to %d but active = %d", perShard, s.Sessions.Active)
	}
	if s.Admission.InFlight < 0 || s.Admission.MaxInFlight < 0 || s.Admission.ShedP99MS < 0 || s.Admission.P99EwmaMS < 0 {
		return fmt.Errorf("admission block has negative fields: %+v", s.Admission)
	}
	if !s.Admission.Enabled && (s.Admission.Shedding || s.Admission.ShedTotal != 0) {
		return fmt.Errorf("admission disabled but shedding state set: %+v", s.Admission)
	}
	for _, q := range s.Quality {
		switch q.State {
		case "ok", "warn", "alert":
		default:
			return fmt.Errorf("quality[%s].state = %q", q.Model, q.State)
		}
		if q.WindowN < 0 || q.Exemplars < 0 {
			return fmt.Errorf("quality[%s] has negative counts", q.Model)
		}
	}
	return nil
}

// fetchRequests GETs /debug/requests, strictly when validating.
func fetchRequests(client *http.Client, base string, strict bool) (serve.RequestsResponse, error) {
	var reqs serve.RequestsResponse
	resp, err := client.Get(strings.TrimRight(base, "/") + "/debug/requests")
	if err != nil {
		return reqs, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return reqs, err
	}
	if resp.StatusCode != http.StatusOK {
		return reqs, fmt.Errorf("/debug/requests returned %d: %s", resp.StatusCode, raw)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(&reqs); err != nil {
		return reqs, fmt.Errorf("decoding /debug/requests: %w", err)
	}
	return reqs, nil
}

// validateRequests checks the documented invariants of the
// flight-recorder view beyond mere decodability.
func validateRequests(r serve.RequestsResponse) error {
	if r.Service != "pmcpowerd" {
		return fmt.Errorf("service = %q, want pmcpowerd", r.Service)
	}
	if !r.Enabled {
		return nil // recorder disabled: empty document is the contract
	}
	if r.RetainedTotal < uint64(len(r.RetainedTraces)) {
		return fmt.Errorf("retained_total = %d < %d retained traces listed",
			r.RetainedTotal, len(r.RetainedTraces))
	}
	for _, s := range append(append([]obs.RequestSummary{}, r.InFlight...), r.Recent...) {
		if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
			return fmt.Errorf("request %s %s has malformed ids %q/%q", s.Method, s.Path, s.TraceID, s.SpanID)
		}
	}
	for _, rt := range r.RetainedTraces {
		if !rt.Summary.Retained {
			return fmt.Errorf("retained trace %s not marked retained", rt.Summary.TraceID)
		}
	}
	return nil
}

// renderRequests formats the recent-traces section under the quality
// table: newest first, retained traces marked so an operator can pull
// them from /debug/flightrec by trace id.
func renderRequests(r serve.RequestsResponse) string {
	if !r.Enabled {
		return "\n(flight recorder disabled)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nrequests: %d total, %d retained", r.RequestsTotal, r.RetainedTotal)
	if r.SlowThresholdS > 0 {
		fmt.Fprintf(&sb, ", slow > %.3fs", r.SlowThresholdS)
	}
	sb.WriteByte('\n')
	rows := append(append([]obs.RequestSummary{}, r.InFlight...), r.Recent...)
	if len(rows) == 0 {
		sb.WriteString("(no requests yet)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-32s %-6s %-14s %6s %9s %8s %s\n",
		"TRACE", "METHOD", "PATH", "STATUS", "DUR MS", "SAMPLES", "NOTE")
	const maxRows = 15
	shown := rows
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	for _, s := range shown {
		note := ""
		switch {
		case s.InFlight:
			note = "in-flight"
		case s.Slow:
			note = "slow"
		case s.FlagReason != "":
			note = s.FlagReason
		case s.Error != "":
			note = "error"
		}
		if s.Retained && note != "in-flight" {
			note = strings.TrimSpace(note + " [retained]")
		}
		status := fmt.Sprintf("%d", s.Status)
		if s.InFlight {
			status = "-"
		}
		fmt.Fprintf(&sb, "%-32s %-6s %-14s %6s %9.2f %8d %s\n",
			s.TraceID, s.Method, s.Path, status,
			float64(s.DurationNs)/1e6, s.Samples, note)
	}
	if len(rows) > maxRows {
		fmt.Fprintf(&sb, "(+%d more)\n", len(rows)-maxRows)
	}
	return sb.String()
}

// shardBars renders the per-shard session counts as a compact
// " [2 0 1 …]" suffix, elided when every shard is empty.
func shardBars(perShard []int) string {
	total := 0
	for _, n := range perShard {
		total += n
	}
	if total == 0 {
		return ""
	}
	parts := make([]string, len(perShard))
	for i, n := range perShard {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return ": [" + strings.Join(parts, " ") + "]"
}

func modelNames(models []serve.ModelInfo) map[string]bool {
	names := make(map[string]bool)
	for _, m := range models {
		names[m.Name] = true
	}
	return names
}

// render formats one status snapshot as the dashboard text.
func render(s serve.StatusResponse) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s (%s)  up %s  health: %s", s.Service, s.Version, s.GoVersion,
		(time.Duration(s.UptimeS * float64(time.Second))).Round(time.Second), s.Health.Status)
	if len(s.Health.AlertingModels) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(s.Health.AlertingModels, ", "))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "models: %d   sessions: %d active, %d created, %d evicted (%d shards%s)\n",
		s.Health.ServableModels, s.Sessions.Active, s.Sessions.Created, s.Sessions.Evicted,
		s.Sessions.Shards, shardBars(s.Sessions.PerShard))
	if s.Admission.Enabled {
		state := "open"
		if s.Admission.Shedding {
			state = "SHEDDING"
		}
		fmt.Fprintf(&sb, "admission: %s   in-flight %d", state, s.Admission.InFlight)
		if s.Admission.MaxInFlight > 0 {
			fmt.Fprintf(&sb, "/%d", s.Admission.MaxInFlight)
		}
		if s.Admission.ShedP99MS > 0 {
			fmt.Fprintf(&sb, "   p99 EWMA %.2f ms (shed > %.2f ms)", s.Admission.P99EwmaMS, s.Admission.ShedP99MS)
		}
		fmt.Fprintf(&sb, "   shed %d\n", s.Admission.ShedTotal)
	} else {
		fmt.Fprintf(&sb, "admission: disabled   in-flight %d\n", s.Admission.InFlight)
	}
	sb.WriteByte('\n')

	fmt.Fprintf(&sb, "%-16s %-6s %6s %8s %9s %8s %8s %8s %9s %5s %6s %5s\n",
		"MODEL", "STATE", "N", "MAPE%", "BIAS W", "P50 W", "P95 W", "P99 W", "LABELLED", "WARN", "ALERT", "EXMP")
	if len(s.Quality) == 0 {
		sb.WriteString("(no labelled samples yet — stream power_w-labelled samples to /v1/estimate)\n")
	}
	for _, q := range s.Quality {
		fmt.Fprintf(&sb, "%-16s %-6s %6d %8.2f %+9.2f %8.2f %8.2f %8.2f %9d %5d %6d %5d\n",
			q.Model, q.State, q.WindowN, q.WindowMAPEPct, q.WindowBiasW,
			q.ErrP50W, q.ErrP95W, q.ErrP99W,
			q.LabelledSamples, q.WarnTransitions, q.AlertTransitions, q.Exemplars)
	}
	return sb.String()
}
