// Command powermodel runs the complete modeling workflow of the paper
// end to end on the simulated platform: data acquisition at the
// selection frequency with all counters, Algorithm-1 counter
// selection, acquisition across all DVFS states, Equation-1 model
// training with HC3 standard errors, and 10-fold cross validation.
//
// Usage:
//
//	powermodel [-seed n] [-counters k] [-folds k] [-j n] [-verbose]
//	           [-trace out.json] [-log-level level]
//
// -j bounds the worker parallelism of acquisition, selection and
// cross validation (0 = all cores, 1 = serial); the results are
// bit-identical at every setting.
//
// -trace writes a Chrome trace_event JSON timeline of the whole run
// (acquisition cells, selection rounds, VIF regressions, the final
// fit, every CV fold, and the parallel workers' lanes) — open it in
// chrome://tracing or https://ui.perfetto.dev. Tracing records wall
// time into a side buffer only: the printed results are bit-identical
// with and without -trace (a test asserts this).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/buildinfo"
	"pmcpower/internal/core"
	"pmcpower/internal/cpusim"
	"pmcpower/internal/obs"
	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

// runConfig bundles the CLI knobs so the e2e test can drive small
// runs through the exact code path the binary uses.
type runConfig struct {
	seed      uint64
	nCounters int
	folds     int
	par       int
	verbose   bool
	tracePath string
	logger    *slog.Logger
}

func main() {
	var cfg runConfig
	flag.Uint64Var(&cfg.seed, "seed", 42, "acquisition seed")
	flag.IntVar(&cfg.nCounters, "counters", 6, "number of PMC events to select")
	flag.IntVar(&cfg.folds, "folds", 10, "cross-validation folds")
	flag.IntVar(&cfg.par, "j", 0, "worker parallelism (0 = all cores, 1 = serial)")
	flag.BoolVar(&cfg.verbose, "verbose", false, "print per-fold and per-workload detail")
	flag.StringVar(&cfg.tracePath, "trace", "", "write a Chrome trace_event JSON timeline of the run to this file")
	logLevel := flag.String("log-level", "warn", "log level for pipeline progress records: debug, info, warn, error")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("powermodel"))
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "powermodel:", err)
		os.Exit(2)
	}
	cfg.logger = obs.NewLogger(os.Stderr, level)

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "powermodel:", err)
		os.Exit(1)
	}
}

func run(cfg runConfig, out io.Writer) error {
	logger := cfg.logger
	if logger == nil {
		logger = obs.NewLogger(io.Discard, slog.LevelError)
	}
	var tracer *obs.Tracer
	if cfg.tracePath != "" {
		tracer = obs.NewTracer()
	}
	ctx := obs.ContextWithTracer(context.Background(), tracer)
	ctx, rootSpan := tracer.StartSpan(ctx, "powermodel",
		obs.Int("counters", cfg.nCounters), obs.Int("folds", cfg.folds))

	platform := cpusim.HaswellEP()
	fmt.Fprintf(out, "platform: %s (%d cores, P-states %v MHz)\n",
		platform.Name, platform.TotalCores(), platform.Frequencies())

	active := workloads.Active()
	fmt.Fprintf(out, "workloads: %d active (%d synthetic, %d SPEC proxies)\n",
		len(active), len(workloads.ActiveByClass(workloads.Synthetic)), len(workloads.ActiveByClass(workloads.SPEC)))

	// Step 1: acquisition at the selection frequency with all 54
	// counters (multiplexed over multiple runs per workload).
	const selFreq = 2400
	fmt.Fprintf(out, "\n[1/4] acquiring all %d counters at %d MHz...\n", pmu.NumEvents(), selFreq)
	logger.Info("acquisition start", "stage", "selection", "freq_mhz", selFreq)
	selDS, err := acquisition.AcquireCtx(ctx, acquisition.Options{Seed: cfg.seed, Parallelism: cfg.par}, active, []int{selFreq})
	if err != nil {
		return err
	}
	plan, err := pmu.PlanRuns(pmu.AllIDs())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "      %d experiments, %d multiplexed runs per workload\n", len(selDS.Rows), len(plan))

	// Step 2: Algorithm 1.
	fmt.Fprintf(out, "\n[2/4] selecting %d PMC events (Algorithm 1)...\n", cfg.nCounters)
	logger.Info("selection start", "count", cfg.nCounters)
	steps, err := core.SelectEventsCtx(ctx, selDS.Rows, core.SelectOptions{Count: cfg.nCounters, Parallelism: cfg.par})
	if err != nil {
		return err
	}
	for i, s := range steps {
		vif := "n/a"
		if i > 0 {
			vif = fmt.Sprintf("%.3f", s.MeanVIF)
		}
		fmt.Fprintf(out, "      %d. %-8s R²=%.3f Adj.R²=%.3f meanVIF=%s\n",
			i+1, pmu.Lookup(s.Event).Short, s.R2, s.AdjR2, vif)
	}
	events := core.Events(steps)

	// Step 3: acquisition across all DVFS states with the selected
	// counters (plus the fixed cycle counter the rate normalization
	// needs).
	freqs := platform.Frequencies()
	fmt.Fprintf(out, "\n[3/4] acquiring selected counters at %v MHz...\n", freqs)
	logger.Info("acquisition start", "stage", "full", "frequencies", len(freqs))
	evAcq := events
	cyc := pmu.MustByName("TOT_CYC").ID
	haveCyc := false
	for _, id := range evAcq {
		if id == cyc {
			haveCyc = true
		}
	}
	if !haveCyc {
		evAcq = append(append([]pmu.EventID(nil), events...), cyc)
	}
	fullDS, err := acquisition.AcquireCtx(ctx, acquisition.Options{Seed: cfg.seed, Events: evAcq, Parallelism: cfg.par}, active, freqs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "      %d experiments\n", len(fullDS.Rows))

	// Step 4: train and cross-validate.
	fmt.Fprintf(out, "\n[4/4] training Equation 1 (OLS + HC3) and running %d-fold CV...\n", cfg.folds)
	logger.Info("training start", "rows", len(fullDS.Rows), "events", len(events))
	model, err := core.TrainCtx(ctx, fullDS.Rows, events, core.TrainOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "      %s\n", model)
	if cfg.verbose {
		fmt.Fprintf(out, "      coefficient table (HC3 standard errors):\n")
		names := append([]string{"delta (const)"}, func() []string {
			var n []string
			for _, id := range events {
				n = append(n, "alpha "+pmu.Lookup(id).Short)
			}
			return append(n, "beta (V²f)", "gamma (V)")
		}()...)
		for i, name := range names {
			fmt.Fprintf(out, "        %-18s %+12.4f ± %.4f (p=%.3g)\n",
				name, model.Fit.Coeffs[i], model.Fit.StdErr[i], model.Fit.PValues[i])
		}
	}

	cv, err := core.CrossValidateCtx(ctx, fullDS.Rows, events, cfg.folds, cfg.seed+7, cfg.par)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ncross-validation (%d folds):\n", cfg.folds)
	fmt.Fprintf(out, "      R²    min=%.4f max=%.4f mean=%.4f\n", cv.R2Summary().Min, cv.R2Summary().Max, cv.R2Summary().Mean)
	fmt.Fprintf(out, "      AdjR² min=%.4f max=%.4f mean=%.4f\n", cv.AdjR2Summary().Min, cv.AdjR2Summary().Max, cv.AdjR2Summary().Mean)
	fmt.Fprintf(out, "      MAPE  min=%.2f%%  max=%.2f%%  mean=%.2f%%\n", cv.MAPESummary().Min, cv.MAPESummary().Max, cv.MAPESummary().Mean)

	if cfg.verbose {
		fmt.Fprintln(out, "\nper-workload MAPE across all DVFS states:")
		perWL := cv.PerWorkloadMAPE()
		for _, w := range fullDS.Workloads() {
			fmt.Fprintf(out, "      %-16s %6.2f%%\n", w, perWL[w])
		}
	}

	rootSpan.End()
	// The trace note goes to the structured log, not to out: stdout
	// must stay bit-identical with and without -trace (the e2e test
	// compares the two byte-for-byte).
	if cfg.tracePath != "" {
		if err := tracer.WriteChromeTraceFile(cfg.tracePath); err != nil {
			return err
		}
		logger.Info("trace written", "path", cfg.tracePath, "spans", tracer.Len(),
			"viewer", "chrome://tracing or ui.perfetto.dev")
	}
	return nil
}
