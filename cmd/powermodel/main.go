// Command powermodel runs the complete modeling workflow of the paper
// end to end on the simulated platform: data acquisition at the
// selection frequency with all counters, Algorithm-1 counter
// selection, acquisition across all DVFS states, Equation-1 model
// training with HC3 standard errors, and 10-fold cross validation.
//
// Usage:
//
//	powermodel [-seed n] [-counters k] [-folds k] [-j n] [-verbose]
//
// -j bounds the worker parallelism of acquisition, selection and
// cross validation (0 = all cores, 1 = serial); the results are
// bit-identical at every setting.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/cpusim"
	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

func main() {
	seed := flag.Uint64("seed", 42, "acquisition seed")
	nCounters := flag.Int("counters", 6, "number of PMC events to select")
	folds := flag.Int("folds", 10, "cross-validation folds")
	par := flag.Int("j", 0, "worker parallelism (0 = all cores, 1 = serial)")
	verbose := flag.Bool("verbose", false, "print per-fold and per-workload detail")
	flag.Parse()

	if err := run(*seed, *nCounters, *folds, *par, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "powermodel:", err)
		os.Exit(1)
	}
}

func run(seed uint64, nCounters, folds, par int, verbose bool) error {
	platform := cpusim.HaswellEP()
	fmt.Printf("platform: %s (%d cores, P-states %v MHz)\n",
		platform.Name, platform.TotalCores(), platform.Frequencies())

	active := workloads.Active()
	fmt.Printf("workloads: %d active (%d synthetic, %d SPEC proxies)\n",
		len(active), len(workloads.ActiveByClass(workloads.Synthetic)), len(workloads.ActiveByClass(workloads.SPEC)))

	// Step 1: acquisition at the selection frequency with all 54
	// counters (multiplexed over multiple runs per workload).
	const selFreq = 2400
	fmt.Printf("\n[1/4] acquiring all %d counters at %d MHz...\n", pmu.NumEvents(), selFreq)
	selDS, err := acquisition.Acquire(acquisition.Options{Seed: seed, Parallelism: par}, active, []int{selFreq})
	if err != nil {
		return err
	}
	plan, err := pmu.PlanRuns(pmu.AllIDs())
	if err != nil {
		return err
	}
	fmt.Printf("      %d experiments, %d multiplexed runs per workload\n", len(selDS.Rows), len(plan))

	// Step 2: Algorithm 1.
	fmt.Printf("\n[2/4] selecting %d PMC events (Algorithm 1)...\n", nCounters)
	steps, err := core.SelectEvents(selDS.Rows, core.SelectOptions{Count: nCounters, Parallelism: par})
	if err != nil {
		return err
	}
	for i, s := range steps {
		vif := "n/a"
		if i > 0 {
			vif = fmt.Sprintf("%.3f", s.MeanVIF)
		}
		fmt.Printf("      %d. %-8s R²=%.3f Adj.R²=%.3f meanVIF=%s\n",
			i+1, pmu.Lookup(s.Event).Short, s.R2, s.AdjR2, vif)
	}
	events := core.Events(steps)

	// Step 3: acquisition across all DVFS states with the selected
	// counters (plus the fixed cycle counter the rate normalization
	// needs).
	freqs := platform.Frequencies()
	fmt.Printf("\n[3/4] acquiring selected counters at %v MHz...\n", freqs)
	evAcq := events
	cyc := pmu.MustByName("TOT_CYC").ID
	haveCyc := false
	for _, id := range evAcq {
		if id == cyc {
			haveCyc = true
		}
	}
	if !haveCyc {
		evAcq = append(append([]pmu.EventID(nil), events...), cyc)
	}
	fullDS, err := acquisition.Acquire(acquisition.Options{Seed: seed, Events: evAcq, Parallelism: par}, active, freqs)
	if err != nil {
		return err
	}
	fmt.Printf("      %d experiments\n", len(fullDS.Rows))

	// Step 4: train and cross-validate.
	fmt.Printf("\n[4/4] training Equation 1 (OLS + HC3) and running %d-fold CV...\n", folds)
	model, err := core.Train(fullDS.Rows, events, core.TrainOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("      %s\n", model)
	if verbose {
		fmt.Printf("      coefficient table (HC3 standard errors):\n")
		names := append([]string{"delta (const)"}, func() []string {
			var n []string
			for _, id := range events {
				n = append(n, "alpha "+pmu.Lookup(id).Short)
			}
			return append(n, "beta (V²f)", "gamma (V)")
		}()...)
		for i, name := range names {
			fmt.Printf("        %-18s %+12.4f ± %.4f (p=%.3g)\n",
				name, model.Fit.Coeffs[i], model.Fit.StdErr[i], model.Fit.PValues[i])
		}
	}

	cv, err := core.CrossValidateP(fullDS.Rows, events, folds, seed+7, par)
	if err != nil {
		return err
	}
	fmt.Printf("\ncross-validation (%d folds):\n", folds)
	fmt.Printf("      R²    min=%.4f max=%.4f mean=%.4f\n", cv.R2Summary().Min, cv.R2Summary().Max, cv.R2Summary().Mean)
	fmt.Printf("      AdjR² min=%.4f max=%.4f mean=%.4f\n", cv.AdjR2Summary().Min, cv.AdjR2Summary().Max, cv.AdjR2Summary().Mean)
	fmt.Printf("      MAPE  min=%.2f%%  max=%.2f%%  mean=%.2f%%\n", cv.MAPESummary().Min, cv.MAPESummary().Max, cv.MAPESummary().Mean)

	if verbose {
		fmt.Println("\nper-workload MAPE across all DVFS states:")
		perWL := cv.PerWorkloadMAPE()
		for _, w := range fullDS.Workloads() {
			fmt.Printf("      %-16s %6.2f%%\n", w, perWL[w])
		}
	}
	return nil
}
