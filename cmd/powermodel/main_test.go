package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestTraceEndToEnd runs the full pipeline twice — tracing off, then
// tracing on — through the same run() the binary uses, and asserts
// (1) stdout is bit-identical, i.e. span emission stays off the
// determinism-critical path, and (2) the emitted Chrome trace JSON
// parses and contains the spans the timeline is supposed to show:
// selection, the final fit, and one cv-fold per fold.
func TestTraceEndToEnd(t *testing.T) {
	const folds = 4
	base := runConfig{seed: 42, nCounters: 2, folds: folds, par: 2}

	var plain bytes.Buffer
	if err := run(base, &plain); err != nil {
		t.Fatalf("run without trace: %v", err)
	}

	tracePath := filepath.Join(t.TempDir(), "out.json")
	traced := base
	traced.tracePath = tracePath
	var withTrace bytes.Buffer
	if err := run(traced, &withTrace); err != nil {
		t.Fatalf("run with trace: %v", err)
	}

	if !bytes.Equal(plain.Bytes(), withTrace.Bytes()) {
		t.Errorf("output differs with tracing enabled:\n--- off ---\n%s--- on ---\n%s",
			plain.String(), withTrace.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			counts[ev.Name]++
		}
	}
	for _, want := range []string{"powermodel", "acquire", "acquire.cell", "selection", "selection.round", "fit", "cv", "cv-fold", "parallel.worker"} {
		if counts[want] == 0 {
			t.Errorf("trace lacks %q spans; have %v", want, counts)
		}
	}
	if counts["cv-fold"] != folds {
		t.Errorf("trace has %d cv-fold spans, want %d", counts["cv-fold"], folds)
	}
	// Two campaigns: selection-frequency and full-DVFS.
	if counts["acquire"] != 2 {
		t.Errorf("trace has %d acquire spans, want 2", counts["acquire"])
	}
}
