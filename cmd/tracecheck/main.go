// Command tracecheck validates a Chrome trace_event JSON file
// produced by the -trace flag of powermodel/expreport or dumped from
// pmcpowerd's flight recorder (/debug/flightrec, SIGQUIT, alert
// dumps): it parses the file, counts the span events, validates any
// trace/span ID annotations, and optionally asserts that named spans
// are present.
//
// Usage:
//
//	tracecheck [-require name,name,...] [-require-ids] trace.json
//
// ID linkage is always checked: every span arg `parent_span_id` must
// name a `span_id` that exists somewhere in the file — an orphaned
// child means the exporter dropped or mangled its root. ID fields,
// when present, must be well-formed W3C hex (32 lowercase hex chars
// for trace_id, 16 for span_id). With -require-ids every span must
// carry both fields, which is the contract for flight-recorder dumps.
//
// Exit status 0 when the file is valid JSON in the trace_event format
// with at least one span, sound ID linkage, and every required name
// present; non-zero otherwise. `make trace-demo` and CI use it to
// gate trace output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pmcpower/internal/buildinfo"
)

func main() {
	require := flag.String("require", "", "comma-separated span names that must appear in the trace")
	requireIDs := flag.Bool("require-ids", false, "require every span to carry trace_id and span_id args (flight-recorder dump contract)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("tracecheck"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require name,...] [-require-ids] trace.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *require, *requireIDs); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

// spanEvent is the subset of a trace event tracecheck inspects. Args
// IDs are optional: powermodel/expreport pipeline traces carry none,
// flight-recorder dumps carry them on every span.
type spanEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	Args  struct {
		TraceID      string `json:"trace_id"`
		SpanID       string `json:"span_id"`
		ParentSpanID string `json:"parent_span_id"`
	} `json:"args"`
}

func check(path, require string, requireIDs bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr struct {
		TraceEvents []spanEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	spans := make(map[string]int)
	spanIDs := make(map[string]bool)
	annotated := 0
	for _, ev := range tr.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		spans[ev.Name]++
		if ev.Args.SpanID != "" {
			spanIDs[ev.Args.SpanID] = true
		}
		if ev.Args.TraceID != "" || ev.Args.SpanID != "" {
			annotated++
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no span events", path)
	}

	// ID discipline: well-formed hex where present, every parent
	// resolvable, and (under -require-ids) no unannotated spans.
	orphans := 0
	for _, ev := range tr.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.Args.TraceID != "" && !validHex(ev.Args.TraceID, 32) {
			return fmt.Errorf("%s: span %q has malformed trace_id %q", path, ev.Name, ev.Args.TraceID)
		}
		if ev.Args.SpanID != "" && !validHex(ev.Args.SpanID, 16) {
			return fmt.Errorf("%s: span %q has malformed span_id %q", path, ev.Name, ev.Args.SpanID)
		}
		if requireIDs && (ev.Args.TraceID == "" || ev.Args.SpanID == "") {
			return fmt.Errorf("%s: span %q lacks trace_id/span_id args", path, ev.Name)
		}
		if p := ev.Args.ParentSpanID; p != "" && !spanIDs[p] {
			fmt.Fprintf(os.Stderr, "tracecheck: orphaned span %q: parent_span_id %s matches no span\n", ev.Name, p)
			orphans++
		}
	}
	if orphans > 0 {
		return fmt.Errorf("%s: %d orphaned spans", path, orphans)
	}

	if require != "" {
		var missing []string
		for _, name := range strings.Split(require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && spans[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: missing required spans %v", path, missing)
		}
	}
	names := make([]string, 0, len(spans))
	for n := range spans {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0
	for _, n := range names {
		total += spans[n]
	}
	fmt.Printf("%s: %d spans, %d distinct names, %d id-annotated\n", path, total, len(names), annotated)
	for _, n := range names {
		fmt.Printf("  %6d  %s\n", spans[n], n)
	}
	return nil
}

func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
