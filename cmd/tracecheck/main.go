// Command tracecheck validates a Chrome trace_event JSON file
// produced by the -trace flag of powermodel/expreport (or dumped from
// pmcpowerd's /debug/trace): it parses the file, counts the span
// events, and optionally asserts that named spans are present.
//
// Usage:
//
//	tracecheck [-require name,name,...] trace.json
//
// Exit status 0 when the file is valid JSON in the trace_event format
// with at least one span and every required name present; non-zero
// otherwise. `make trace-demo` and CI use it to gate trace output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	require := flag.String("require", "", "comma-separated span names that must appear in the trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require name,...] trace.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *require); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func check(path, require string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	spans := make(map[string]int)
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "X" {
			spans[ev.Name]++
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no span events", path)
	}
	if require != "" {
		var missing []string
		for _, name := range strings.Split(require, ",") {
			name = strings.TrimSpace(name)
			if name != "" && spans[name] == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: missing required spans %v", path, missing)
		}
	}
	names := make([]string, 0, len(spans))
	for n := range spans {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0
	for _, n := range names {
		total += spans[n]
	}
	fmt.Printf("%s: %d spans, %d distinct names\n", path, total, len(names))
	for _, n := range names {
		fmt.Printf("  %6d  %s\n", spans[n], n)
	}
	return nil
}
