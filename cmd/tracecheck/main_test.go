package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmcpower/internal/obs"
)

func writeTrace(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const rootSpan = `{"name":"POST /v1/estimate","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,
	"args":{"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736","span_id":"00f067aa0ba902b7"}}`

func TestCheckValidLinkage(t *testing.T) {
	p := writeTrace(t, `{"traceEvents":[`+rootSpan+`,
		{"name":"reject","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,
		 "args":{"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736","span_id":"0000000000000001","parent_span_id":"00f067aa0ba902b7"}}]}`)
	if err := check(p, "", true); err != nil {
		t.Fatalf("valid linked trace rejected: %v", err)
	}
	if err := check(p, "reject,POST /v1/estimate", true); err != nil {
		t.Fatalf("required spans not found: %v", err)
	}
}

func TestCheckOrphanedSpan(t *testing.T) {
	p := writeTrace(t, `{"traceEvents":[`+rootSpan+`,
		{"name":"child","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,
		 "args":{"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736","span_id":"0000000000000001","parent_span_id":"deadbeefdeadbeef"}}]}`)
	err := check(p, "", false)
	if err == nil || !strings.Contains(err.Error(), "orphaned") {
		t.Fatalf("orphaned span not detected: %v", err)
	}
}

func TestCheckMalformedIDs(t *testing.T) {
	for _, body := range []string{
		`{"traceEvents":[{"name":"s","ph":"X","args":{"trace_id":"XYZ","span_id":"0000000000000001"}}]}`,
		`{"traceEvents":[{"name":"s","ph":"X","args":{"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736","span_id":"short"}}]}`,
	} {
		if err := check(writeTrace(t, body), "", false); err == nil {
			t.Fatalf("malformed ids accepted: %s", body)
		}
	}
}

func TestCheckRequireIDs(t *testing.T) {
	p := writeTrace(t, `{"traceEvents":[{"name":"bare","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`)
	if err := check(p, "", false); err != nil {
		t.Fatalf("unannotated pipeline trace rejected without -require-ids: %v", err)
	}
	if err := check(p, "", true); err == nil {
		t.Fatal("unannotated trace accepted under -require-ids")
	}
}

func TestCheckMissingRequired(t *testing.T) {
	p := writeTrace(t, `{"traceEvents":[`+rootSpan+`]}`)
	if err := check(p, "nope", false); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing required span not reported: %v", err)
	}
}

// TestCheckAcceptsFlightRecorderDump closes the loop with the real
// exporter: a recorder dump with retained traces passes the strictest
// checks (ids required, no orphans).
func TestCheckAcceptsFlightRecorderDump(t *testing.T) {
	rec := obs.NewFlightRecorder(obs.FlightRecorderConfig{Stages: []string{"parse", "push"}})
	tc, _ := obs.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	at := rec.Begin(tc, "POST", "/v1/estimate")
	at.Stage(0, 1e6)
	at.Event("reject", "bad line", 1e3)
	at.Error("boom")
	rec.Finish(at, 400)

	p := filepath.Join(t.TempDir(), "dump.json")
	if err := rec.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	if err := check(p, "POST /v1/estimate", true); err != nil {
		t.Fatalf("real recorder dump rejected: %v", err)
	}
}
