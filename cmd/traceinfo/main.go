// Command traceinfo inspects trace archives: definitions, event
// counts, metric statistics and phase structure. It can also generate
// a demonstration archive by tracing one simulated workload run.
//
// Usage:
//
//	traceinfo -gen demo.trc [-workload compute] [-freq 2400]
//	traceinfo demo.trc
//	traceinfo -detect demo.trc   # segment the power signal without
//	                             # using the instrumentation (HAEC-SIM
//	                             # style phase detection)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/buildinfo"
	"pmcpower/internal/phasedetect"
	"pmcpower/internal/phaseprofile"
	"pmcpower/internal/pmu"
	"pmcpower/internal/trace"
	"pmcpower/internal/workloads"
)

func main() {
	gen := flag.String("gen", "", "generate a demo archive at this path instead of reading one")
	wlName := flag.String("workload", "compute", "workload to trace with -gen")
	freq := flag.Int("freq", 2400, "core frequency in MHz for -gen")
	detect := flag.Bool("detect", false, "segment the power signal instead of listing phases")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("traceinfo"))
		return
	}

	if *gen != "" {
		if err := generate(*gen, *wlName, *freq); err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-gen out.trc] [-detect] <archive.trc>")
		os.Exit(2)
	}
	var err error
	if *detect {
		err = detectPhases(flag.Arg(0))
	} else {
		err = inspect(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

// detectPhases segments the archive's power signal with
// internal/phasedetect and compares the result against the
// instrumented Enter/Leave boundaries.
func detectPhases(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	defs := r.Definitions()
	isPower := map[trace.Ref]bool{}
	for _, m := range defs.Metrics {
		if phaseprofile.IsPowerMetric(m.Name) {
			isPower[m.Ref] = true
		}
	}
	if len(isPower) == 0 {
		return fmt.Errorf("archive has no power channel")
	}
	// Sum the per-socket channels per timestamp into one node signal.
	sums := map[uint64]float64{}
	var order []uint64
	instrumented := 0
	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if ev.Kind == trace.KindEnter {
			instrumented++
		}
		if ev.Kind == trace.KindMetric && isPower[ev.Metric] {
			if _, ok := sums[ev.TimeNs]; !ok {
				order = append(order, ev.TimeNs)
			}
			sums[ev.TimeNs] += ev.Value
		}
	}
	samples := make([]phasedetect.Sample, 0, len(order))
	for _, tNs := range order {
		samples = append(samples, phasedetect.Sample{TimeNs: tNs, Value: sums[tNs]})
	}
	segs, err := phasedetect.Detect(samples, phasedetect.Options{RelThreshold: 0.03})
	if err != nil {
		return err
	}
	fmt.Printf("power signal: %d samples; instrumented phases: %d; detected segments: %d\n",
		len(samples), instrumented, len(segs))
	for i, seg := range segs {
		fmt.Printf("  segment %2d  [%7.3f s, %7.3f s)  %6.1f W ± %.2f W  (%d samples)\n",
			i+1, float64(seg.StartNs)/1e9, float64(seg.EndNs)/1e9, seg.Mean, seg.Std, seg.N)
	}
	return nil
}

func generate(path, wlName string, freq int) error {
	wl, err := workloads.ByName(wlName)
	if err != nil {
		return err
	}
	// Trace a single multiplexed run campaign for one workload and
	// frequency; keep the first produced archive.
	var captured []byte
	var capturedName string
	opts := acquisition.Options{
		Seed: 42,
		TraceSink: func(name string, data []byte) {
			if captured == nil {
				captured = append([]byte(nil), data...)
				capturedName = name
			}
		},
	}
	if _, err := acquisition.Acquire(opts, []*workloads.Workload{wl}, []int{freq}); err != nil {
		return err
	}
	if captured == nil {
		return fmt.Errorf("no trace produced")
	}
	if err := os.WriteFile(path, captured, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, run %s)\n", path, len(captured), capturedName)
	return nil
}

func inspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	defs := r.Definitions()
	fmt.Printf("archive: %s\n", path)
	fmt.Printf("locations: %d\n", len(defs.Locations))
	for _, l := range defs.Locations {
		fmt.Printf("  [%d] %s\n", l.Ref, l.Name)
	}
	fmt.Printf("regions: %d\n", len(defs.Regions))
	for _, reg := range defs.Regions {
		fmt.Printf("  [%d] %s\n", reg.Ref, reg.Name)
	}
	fmt.Printf("metrics: %d\n", len(defs.Metrics))
	for _, m := range defs.Metrics {
		fmt.Printf("  [%d] %-24s unit=%-9s mode=%s\n", m.Ref, m.Name, m.Unit, m.Mode)
	}

	var enters, leaves, metrics uint64
	var firstNs, lastNs uint64
	first := true
	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if first {
			firstNs = ev.TimeNs
			first = false
		}
		lastNs = ev.TimeNs
		switch ev.Kind {
		case trace.KindEnter:
			enters++
		case trace.KindLeave:
			leaves++
		case trace.KindMetric:
			metrics++
		}
	}
	fmt.Printf("events: %d enter, %d leave, %d metric samples\n", enters, leaves, metrics)
	fmt.Printf("time span: %.3f s\n", float64(lastNs-firstNs)/1e9)

	// Phase-profile view (re-read the archive).
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	phases, err := phaseprofile.FromTrace(f, path)
	if err != nil {
		return err
	}
	fmt.Printf("phase profiles: %d\n", len(phases))
	for _, ph := range phases {
		fmt.Printf("  %-24s threads=%-2d f=%d MHz  %.2fs  P=%.1f W  V=%.3f V  (%d PMC rates)\n",
			ph.Region, ph.Threads, ph.FreqMHz, ph.DurationS(), ph.PowerW, ph.VoltageV, len(ph.Rates))
		_ = pmu.NumEvents
	}
	return nil
}
