// Command pmcpowerd serves trained Equation-1 power models as an
// always-on HTTP monitoring service — the deployment the paper
// motivates: counter-fed real-time power information for power
// management.
//
// Usage:
//
//	pmcpowerd -model model.json [-model other.json] [-addr :9120]
//	pmcpowerd -selfcal [-addr :9120]   # calibrate a demo model first
//
// Endpoints:
//
//	GET  /healthz               readiness (503 with no models; ?deep=1 also fails on drift alert)
//	GET  /v1/models             registered models (name, version, events, R²)
//	GET  /v1/status             service + model-quality status document (pmcpowertop polls this)
//	POST /v1/predict            batch prediction over JSON rows
//	POST /v1/estimate           streaming NDJSON estimation
//	GET  /debug/exemplars       worst-residual labelled samples per model
//	GET  /debug/requests        in-flight + recent requests with trace IDs and stage timings
//	GET  /debug/flightrec       retained traces as a Chrome trace_event document
//	GET  /metrics               Prometheus text metrics (shared obs registry)
//
// /v1/estimate reads one JSON counter sample per line and writes one
// estimate per line; ?session=ID keeps estimator state across
// requests, ?alpha=0.3 sets the EWMA factor, ?model=name@2 pins a
// model version. Samples carrying a measured power_w feed the
// model-quality tracker (windowed MAPE, bias, error quantiles, drift
// state) regardless of whether streaming refit is enabled.
//
// Observability: logs are structured JSON on stderr (-log-level
// debug|info|warn|error). With -debug-addr a second, private listener
// serves net/http/pprof under /debug/pprof/, the request-span dump as
// Chrome trace JSON under /debug/trace, and the metrics exposition
// under /debug/metrics — profiling never shares the public port.
//
// Request tracing: every request carries a W3C trace context (adopted
// from an inbound `traceparent` header or minted) that appears in the
// Traceparent response header, log records, NDJSON rows, and quality
// events. A tail-sampled flight recorder retains full traces for
// slow, errored, or quality-flagged requests; SIGQUIT and drift-alert
// transitions dump them as a Chrome-trace file (-flightrec-dump,
// inspectable with tracecheck or chrome://tracing).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/buildinfo"
	"pmcpower/internal/core"
	"pmcpower/internal/obs"
	"pmcpower/internal/pmu"
	"pmcpower/internal/quality"
	"pmcpower/internal/serve"
	"pmcpower/internal/workloads"
)

func main() {
	var modelPaths []string
	flag.Func("model", "trained model JSON to serve (repeatable; registered under its base name)",
		func(p string) error { modelPaths = append(modelPaths, p); return nil })
	addr := flag.String("addr", ":9120", "listen address")
	debugAddr := flag.String("debug-addr", "", "private listener for pprof, /debug/trace and /debug/metrics (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	selfcal := flag.Bool("selfcal", false, "calibrate a model on the simulated platform at startup (registered as \"default\")")
	seed := flag.Uint64("seed", 42, "calibration seed for -selfcal")
	alpha := flag.Float64("alpha", 1, "default EWMA smoothing factor for streams that do not pass ?alpha=")
	refitWindow := flag.Int("refit-window", 0, "default streaming-refit window (rows) for labelled estimate streams; 0 serves frozen models (per-stream ?refit= overrides)")
	idleTTL := flag.Duration("idle-ttl", 5*time.Minute, "evict estimator sessions idle this long")
	maxSessions := flag.Int("max-sessions", 1024, "cap on concurrent estimator sessions")
	shards := flag.Int("shards", 8, "session-table shard count (rounded up to a power of two); 1 restores the single-lock table")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently admitted estimate/predict requests; beyond it requests are shed with 429 (0 disables)")
	shedP99MS := flag.Float64("shed-p99-ms", 0, "shed estimate/predict requests with 503 while the p99 latency EWMA exceeds this many milliseconds (0 disables)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After backoff hint stamped on shed (429/503) responses")
	maxBodyBytes := flag.Int64("max-body-bytes", 8<<20, "cap on /v1/predict and model-upload request bodies (413 beyond)")
	legacyServing := flag.Bool("legacy-serving", false, "serve with the pre-sharding code path (single-lock sessions, per-sample flush); the loadtest baseline")
	qualityWindow := flag.Int("quality-window", 256, "sliding-window size (labelled samples) for model-quality tracking")
	qualityExemplars := flag.Int("quality-exemplars", 32, "worst-residual samples kept per model for /debug/exemplars")
	warnMAPE := flag.Float64("quality-warn-mape", 10, "windowed MAPE %% that moves a model to drift warn (negative disables)")
	alertMAPE := flag.Float64("quality-alert-mape", 20, "windowed MAPE %% that moves a model to drift alert (negative disables)")
	noQuality := flag.Bool("no-quality", false, "disable model-quality tracking entirely")
	flightRecDump := flag.String("flightrec-dump", "pmcpowerd-flightrec.json", "Chrome-trace file the flight recorder dumps to on SIGQUIT and drift-alert transitions (empty disables dumps)")
	flightRecRetain := flag.Int("flightrec-retain", 0, "retained-trace ring size for slow/errored/flagged requests (0 = default 64)")
	flightRecMinSlow := flag.Duration("flightrec-min-slow", 0, "absolute floor below which no request counts as slow (0 = default 1s)")
	noFlightRec := flag.Bool("no-flightrec", false, "disable the tail-sampled flight recorder (/debug/requests, /debug/flightrec)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("pmcpowerd"))
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmcpowerd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	opts := options{
		modelPaths:       modelPaths,
		addr:             *addr,
		debugAddr:        *debugAddr,
		selfcal:          *selfcal,
		seed:             *seed,
		alpha:            *alpha,
		refitWindow:      *refitWindow,
		idleTTL:          *idleTTL,
		maxSessions:      *maxSessions,
		shards:           *shards,
		maxInflight:      *maxInflight,
		shedP99:          time.Duration(*shedP99MS * float64(time.Millisecond)),
		retryAfter:       *retryAfter,
		maxBodyBytes:     *maxBodyBytes,
		legacyServing:    *legacyServing,
		qualityWindow:    *qualityWindow,
		qualityExemplars: *qualityExemplars,
		warnMAPE:         *warnMAPE,
		alertMAPE:        *alertMAPE,
		noQuality:        *noQuality,
		flightRecDump:    *flightRecDump,
		flightRecRetain:  *flightRecRetain,
		flightRecMinSlow: *flightRecMinSlow,
		noFlightRec:      *noFlightRec,
	}
	if err := run(logger, opts); err != nil {
		logger.Error("fatal", "err", err.Error())
		os.Exit(1)
	}
}

// options is the parsed flag set.
type options struct {
	modelPaths       []string
	addr, debugAddr  string
	selfcal          bool
	seed             uint64
	alpha            float64
	refitWindow      int
	idleTTL          time.Duration
	maxSessions      int
	shards           int
	maxInflight      int
	shedP99          time.Duration
	retryAfter       time.Duration
	maxBodyBytes     int64
	legacyServing    bool
	qualityWindow    int
	qualityExemplars int
	warnMAPE         float64
	alertMAPE        float64
	noQuality        bool
	flightRecDump    string
	flightRecRetain  int
	flightRecMinSlow time.Duration
	noFlightRec      bool
}

func run(logger *slog.Logger, opts options) error {
	modelPaths, addr, debugAddr := opts.modelPaths, opts.addr, opts.debugAddr
	selfcal, seed := opts.selfcal, opts.seed
	start := time.Now()
	reg := serve.NewRegistry()
	for _, p := range modelPaths {
		name, version, err := reg.LoadFile(p)
		if err != nil {
			return err
		}
		logger.Info("model loaded", "path", p, "name", name, "version", version)
	}
	if selfcal {
		m, err := calibrate(logger, seed)
		if err != nil {
			return fmt.Errorf("self-calibration: %w", err)
		}
		if _, err := reg.Add("default", m); err != nil {
			return err
		}
		logger.Info("self-calibrated model registered", "name", "default", "version", 1, "model", m.String())
	}
	if len(reg.List()) == 0 {
		return errors.New("no models: pass -model model.json (train one with `estimate -train model.json`) or -selfcal")
	}

	tracer := obs.NewTracer()
	srv := serve.New(serve.Config{
		Registry:         reg,
		DefaultAlpha:     opts.alpha,
		RefitWindow:      opts.refitWindow,
		IdleTTL:          opts.idleTTL,
		MaxSessions:      opts.maxSessions,
		Shards:           opts.shards,
		MaxInFlight:      opts.maxInflight,
		ShedP99:          opts.shedP99,
		RetryAfter:       opts.retryAfter,
		MaxBodyBytes:     opts.maxBodyBytes,
		LegacyServing:    opts.legacyServing,
		Obs:              obs.Default(),
		Logger:           logger,
		Tracer:           tracer,
		QualityWindow:    opts.qualityWindow,
		QualityExemplars: opts.qualityExemplars,
		QualityThresholds: quality.Thresholds{
			WarnMAPEPct:  opts.warnMAPE,
			AlertMAPEPct: opts.alertMAPE,
		},
		DisableQuality:    opts.noQuality,
		DisableFlightRec:  opts.noFlightRec,
		FlightRecRetain:   opts.flightRecRetain,
		FlightRecMinSlow:  opts.flightRecMinSlow,
		FlightRecDumpPath: opts.flightRecDump,
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() {
		logger.Info("listening", "addr", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{Addr: debugAddr, Handler: obs.DebugMux(tracer, obs.Default())}
		go func() {
			logger.Info("debug listener", "addr", debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
	}

	// SIGQUIT dumps the flight recorder without stopping the daemon —
	// the "what just happened" escape hatch when the service misbehaves
	// but must keep serving.
	if opts.flightRecDump != "" && srv.FlightRecorder() != nil {
		quitc := make(chan os.Signal, 1)
		signal.Notify(quitc, syscall.SIGQUIT)
		defer signal.Stop(quitc)
		go func() {
			for range quitc {
				if err := srv.FlightRecorder().WriteFile(opts.flightRecDump); err != nil {
					logger.Error("flight-recorder dump failed", "path", opts.flightRecDump, "err", err.Error())
					continue
				}
				total, kept := srv.FlightRecorder().Stats()
				logger.Info("flight-recorder dump written",
					"path", opts.flightRecDump, "requests_total", total, "retained_total", kept)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("shutdown complete",
		"uptime_s", time.Since(start).Seconds(),
		"requests_served", srv.Metrics().TotalRequests(),
		"request_spans", tracer.Len())
	return nil
}

// calibrate trains a six-counter model on the simulated platform —
// the same selection-then-training flow as `estimate -train`, for
// serving without a pre-trained document.
func calibrate(logger *slog.Logger, seed uint64) (*core.Model, error) {
	selDS, err := acquisition.Acquire(acquisition.Options{Seed: seed}, workloads.Active(), []int{2400})
	if err != nil {
		return nil, err
	}
	steps, err := core.SelectEvents(selDS.Rows, core.SelectOptions{Count: 6})
	if err != nil {
		return nil, err
	}
	events := core.Events(steps)
	logger.Info("selected counters", "events", pmu.ShortNames(events))
	full, err := acquisition.Acquire(acquisition.Options{Seed: seed, Events: events},
		workloads.Active(), []int{1200, 1600, 2000, 2400, 2600})
	if err != nil {
		return nil, err
	}
	return core.Train(full.Rows, events, core.TrainOptions{})
}
