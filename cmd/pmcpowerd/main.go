// Command pmcpowerd serves trained Equation-1 power models as an
// always-on HTTP monitoring service — the deployment the paper
// motivates: counter-fed real-time power information for power
// management.
//
// Usage:
//
//	pmcpowerd -model model.json [-model other.json] [-addr :9120]
//	pmcpowerd -selfcal [-addr :9120]   # calibrate a demo model first
//
// Endpoints:
//
//	GET  /healthz               liveness
//	GET  /v1/models             registered models (name, version, events, R²)
//	POST /v1/predict            batch prediction over JSON rows
//	POST /v1/estimate           streaming NDJSON estimation
//	GET  /metrics               text metrics (requests, sessions, rejects, latency)
//
// /v1/estimate reads one JSON counter sample per line and writes one
// estimate per line; ?session=ID keeps estimator state across
// requests, ?alpha=0.3 sets the EWMA factor, ?model=name@2 pins a
// model version.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/serve"
	"pmcpower/internal/workloads"
)

func main() {
	var modelPaths []string
	flag.Func("model", "trained model JSON to serve (repeatable; registered under its base name)",
		func(p string) error { modelPaths = append(modelPaths, p); return nil })
	addr := flag.String("addr", ":9120", "listen address")
	selfcal := flag.Bool("selfcal", false, "calibrate a model on the simulated platform at startup (registered as \"default\")")
	seed := flag.Uint64("seed", 42, "calibration seed for -selfcal")
	alpha := flag.Float64("alpha", 1, "default EWMA smoothing factor for streams that do not pass ?alpha=")
	idleTTL := flag.Duration("idle-ttl", 5*time.Minute, "evict estimator sessions idle this long")
	maxSessions := flag.Int("max-sessions", 1024, "cap on concurrent estimator sessions")
	flag.Parse()

	if err := run(modelPaths, *addr, *selfcal, *seed, *alpha, *idleTTL, *maxSessions); err != nil {
		fmt.Fprintln(os.Stderr, "pmcpowerd:", err)
		os.Exit(1)
	}
}

func run(modelPaths []string, addr string, selfcal bool, seed uint64, alpha float64, idleTTL time.Duration, maxSessions int) error {
	reg := serve.NewRegistry()
	for _, p := range modelPaths {
		name, version, err := reg.LoadFile(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %s as %s@%d\n", p, name, version)
	}
	if selfcal {
		m, err := calibrate(seed)
		if err != nil {
			return fmt.Errorf("self-calibration: %w", err)
		}
		if _, err := reg.Add("default", m); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "self-calibrated model registered as default@1: %s\n", m)
	}
	if len(reg.List()) == 0 {
		return errors.New("no models: pass -model model.json (train one with `estimate -train model.json`) or -selfcal")
	}

	srv := serve.New(serve.Config{
		Registry:     reg,
		DefaultAlpha: alpha,
		IdleTTL:      idleTTL,
		MaxSessions:  maxSessions,
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "listening on %s\n", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// calibrate trains a six-counter model on the simulated platform —
// the same selection-then-training flow as `estimate -train`, for
// serving without a pre-trained document.
func calibrate(seed uint64) (*core.Model, error) {
	selDS, err := acquisition.Acquire(acquisition.Options{Seed: seed}, workloads.Active(), []int{2400})
	if err != nil {
		return nil, err
	}
	steps, err := core.SelectEvents(selDS.Rows, core.SelectOptions{Count: 6})
	if err != nil {
		return nil, err
	}
	events := core.Events(steps)
	fmt.Fprintf(os.Stderr, "selected counters: %v\n", pmu.ShortNames(events))
	full, err := acquisition.Acquire(acquisition.Options{Seed: seed, Events: events},
		workloads.Active(), []int{1200, 1600, 2000, 2400, 2600})
	if err != nil {
		return nil, err
	}
	return core.Train(full.Rows, events, core.TrainOptions{})
}
