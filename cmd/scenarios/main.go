// Command scenarios runs the stress-scenario matrix: every built-in
// scenario from internal/scenario against a freshly trained model,
// with a console report and an optional JSON report artifact. The
// process exits non-zero when any scenario fails, so the same command
// gates CI and reproduces failures locally.
//
// Usage:
//
//	scenarios                       # run everything
//	scenarios -list                 # enumerate the matrix
//	scenarios -run counter-dropout  # substring filter
//	scenarios -json scenarios.json  # also write the JSON report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmcpower/internal/buildinfo"
	"pmcpower/internal/scenario"
)

func main() {
	runFilter := flag.String("run", "", "only run scenarios whose name contains this substring")
	jsonPath := flag.String("json", "", "write the JSON report to this file")
	list := flag.Bool("list", false, "list scenarios and exit")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("scenarios"))
		return
	}

	if *list {
		for _, s := range scenario.Builtin() {
			fmt.Printf("%-28s %s\n", s.Name, s.Description)
		}
		return
	}
	if err := run(*runFilter, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func run(runFilter, jsonPath string) error {
	fmt.Println("training scenario environment ...")
	h, err := scenario.NewHarness()
	if err != nil {
		return err
	}
	var filter func(scenario.Scenario) bool
	if runFilter != "" {
		filter = func(s scenario.Scenario) bool { return strings.Contains(s.Name, runFilter) }
	}
	rep := h.RunAll(filter)
	rep.WriteConsole(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("JSON report written to %s\n", jsonPath)
	}
	if rep.Total == 0 {
		return fmt.Errorf("no scenario matched -run %q", runFilter)
	}
	if !rep.Pass {
		return fmt.Errorf("%d of %d scenarios failed", rep.Failed, rep.Total)
	}
	return nil
}
