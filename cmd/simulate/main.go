// Command simulate exposes the substrate directly: execute one
// workload phase on a simulated platform and print the resulting
// performance counters and the ground-truth power breakdown — the
// "what would the machine do" view beneath the modeling workflow.
//
// Usage:
//
//	simulate -workload md -freq 2400 -threads 24
//	simulate -list                     # available workloads
//	simulate -platform arm -workload compute -freq 1800 -threads 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pmcpower/internal/buildinfo"
	"pmcpower/internal/cpusim"
	"pmcpower/internal/pmu"
	"pmcpower/internal/power"
	"pmcpower/internal/rng"
	"pmcpower/internal/workloads"
)

func main() {
	wlName := flag.String("workload", "compute", "workload to execute")
	freq := flag.Int("freq", 2400, "core frequency in MHz")
	threads := flag.Int("threads", 24, "active threads")
	seed := flag.Uint64("seed", 1, "run seed")
	platformName := flag.String("platform", "haswell", "platform: haswell or arm")
	list := flag.Bool("list", false, "list available workloads and exit")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("simulate"))
		return
	}

	if *list {
		listWorkloads()
		return
	}
	if err := run(*wlName, *freq, *threads, *seed, *platformName); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func listWorkloads() {
	fmt.Printf("%-16s %-12s %-8s %s\n", "name", "suite", "phases", "description")
	for _, w := range workloads.All() {
		suite := w.Class.String()
		if w.Excluded {
			suite += " (excluded)"
		}
		fmt.Printf("%-16s %-12s %-8d %s\n", w.Name, suite, len(w.Phases), w.Description)
	}
}

func run(wlName string, freq, threads int, seed uint64, platformName string) error {
	var platform *cpusim.Platform
	var model *power.Model
	switch platformName {
	case "haswell":
		platform = cpusim.HaswellEP()
		model = power.DefaultModel()
	case "arm":
		platform = cpusim.EmbeddedARM()
		model = power.EmbeddedModel()
	default:
		return fmt.Errorf("unknown platform %q (haswell or arm)", platformName)
	}
	wl, err := workloads.ByName(wlName)
	if err != nil {
		return err
	}
	exec := cpusim.NewExecutor(platform)

	fmt.Printf("platform: %s\n", platform.Name)
	fmt.Printf("workload: %s — %s\n", wl.Name, wl.Description)
	fmt.Printf("run:      %d MHz, %d threads, 1 s per phase, seed %d\n\n", freq, threads, seed)

	acts, err := exec.ExecutePhases(wl, freq, threads, float64(len(wl.Phases)), rng.New(seed))
	if err != nil {
		return err
	}
	for pi, a := range acts {
		fmt.Printf("--- phase %q (%.2f s) ---\n", wl.Phases[pi].Name, a.DurationS)
		fmt.Printf("IPC %.2f   core voltage %.3f V   DRAM %.1f GB/s (%.0f%% of peak)\n",
			a.IPC(), a.CoreVoltageV, a.MemBandwidthGBs(), a.MemBWUtil*100)

		b, err := model.NodePower(platform, a)
		if err != nil {
			return err
		}
		fmt.Printf("ground-truth power: %.1f W  (cores %.1f, uncore %.1f, IMC %.1f, static %.1f, const %.1f; die %.0f °C)\n",
			b.TotalW, b.CoreDynW, b.UncoreDynW, b.IMCW, b.StaticW, b.ConstW, b.DieTempC)

		counters := cpusim.AllCounters(a)
		type kv struct {
			name string
			rate float64
		}
		var rows []kv
		for id, v := range counters {
			rows = append(rows, kv{pmu.Lookup(id).Short, v / a.DurationS})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		fmt.Println("counter rates (events/s):")
		for i := 0; i < len(rows); i += 3 {
			for j := i; j < i+3 && j < len(rows); j++ {
				fmt.Printf("  %-9s %12.4g", rows[j].name, rows[j].rate)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	return nil
}
