// Command expreport regenerates the tables and figures of the paper's
// evaluation on the simulated platform.
//
// Usage:
//
//	expreport [-exp id] [-seed n] [-j n]
//
// With no -exp flag every experiment is printed in order. Valid ids:
// table1, fig2, table2, fig3, fig4, fig5a, fig5b, table3, fig6,
// table4, seventh, ablations, baselines, strategies, transform,
// hetero, stability, crossplatform.
//
// -j bounds the worker parallelism of the modeling pipeline and of
// the experiment fan-out (0 = all cores, 1 = serial). The output is
// bit-identical at every setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmcpower/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig2, table2, fig3, fig4, fig5a, fig5b, table3, fig6, table4, seventh, ablations, baselines, strategies, transform, hetero, stability, crossplatform, all)")
	seed := flag.Uint64("seed", 0, "override the acquisition seed (0 = canonical)")
	par := flag.Int("j", 0, "worker parallelism (0 = all cores, 1 = serial)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallelism = *par
	ctx := experiments.NewContext(cfg)

	want := strings.ToLower(*exp)
	if want == "all" {
		rendered, err := ctx.RunAll(*par)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
			os.Exit(1)
		}
		for _, r := range rendered {
			fmt.Printf("=== %s ===\n%s\n", r.Desc, r.Output)
		}
		return
	}

	for _, r := range ctx.Renderers() {
		if want != r.ID {
			continue
		}
		out, err := r.Render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", r.Desc, out)
		return
	}
	fmt.Fprintf(os.Stderr, "expreport: unknown experiment %q\n", *exp)
	os.Exit(2)
}
