// Command expreport regenerates the tables and figures of the paper's
// evaluation on the simulated platform.
//
// Usage:
//
//	expreport [-exp id] [-seed n] [-j n] [-trace out.json] [-log-level level]
//
// With no -exp flag every experiment is printed in order. Valid ids:
// table1, fig2, table2, fig3, fig4, fig5a, fig5b, table3, fig6,
// table4, seventh, ablations, baselines, strategies, transform,
// hetero, stability, crossplatform.
//
// -j bounds the worker parallelism of the modeling pipeline and of
// the experiment fan-out (0 = all cores, 1 = serial). The output is
// bit-identical at every setting.
//
// -trace writes a Chrome trace_event JSON timeline of the run — one
// "exp:<id>" span per experiment in its worker's lane, with the
// modeling pipeline's spans nested inside — loadable in
// chrome://tracing or https://ui.perfetto.dev. Tracing does not
// change the printed reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmcpower/internal/buildinfo"
	"pmcpower/internal/experiments"
	"pmcpower/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig2, table2, fig3, fig4, fig5a, fig5b, table3, fig6, table4, seventh, ablations, baselines, strategies, transform, hetero, stability, crossplatform, all)")
	seed := flag.Uint64("seed", 0, "override the acquisition seed (0 = canonical)")
	par := flag.Int("j", 0, "worker parallelism (0 = all cores, 1 = serial)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this file")
	logLevel := flag.String("log-level", "warn", "log level for progress records: debug, info, warn, error")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("expreport"))
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "expreport:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)

	cfg := experiments.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallelism = *par
	ctx := experiments.NewContext(cfg)

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	runCtx := obs.ContextWithTracer(context.Background(), tracer)
	runCtx, rootSpan := tracer.StartSpan(runCtx, "expreport", obs.String("exp", *exp))

	writeTrace := func() {
		rootSpan.End()
		if *tracePath == "" {
			return
		}
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "expreport:", err)
			os.Exit(1)
		}
		logger.Info("trace written", "path", *tracePath, "spans", tracer.Len())
	}

	want := strings.ToLower(*exp)
	if want == "all" {
		rendered, err := ctx.RunAllCtx(runCtx, *par)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
			os.Exit(1)
		}
		for _, r := range rendered {
			fmt.Printf("=== %s ===\n%s\n", r.Desc, r.Output)
		}
		writeTrace()
		return
	}

	for _, r := range ctx.Renderers() {
		if want != r.ID {
			continue
		}
		_, span := tracer.StartSpan(runCtx, "exp:"+r.ID, obs.String("desc", r.Desc))
		out, err := r.Render()
		span.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", r.Desc, out)
		writeTrace()
		return
	}
	fmt.Fprintf(os.Stderr, "expreport: unknown experiment %q\n", *exp)
	os.Exit(2)
}
