// Command expreport regenerates the tables and figures of the paper's
// evaluation on the simulated platform.
//
// Usage:
//
//	expreport [-exp id] [-seed n]
//
// With no -exp flag every experiment is printed in order. Valid ids:
// table1, fig2, table2, fig3, fig4, fig5a, fig5b, table3, fig6,
// table4, seventh, ablations, baselines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmcpower/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, fig2, table2, fig3, fig4, fig5a, fig5b, table3, fig6, table4, seventh, ablations, baselines, strategies, transform, hetero, stability, crossplatform, all)")
	seed := flag.Uint64("seed", 0, "override the acquisition seed (0 = canonical)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	ctx := experiments.NewContext(cfg)

	type renderer struct {
		id   string
		desc string
		fn   func() (string, error)
	}
	all := []renderer{
		{"table1", "E1: Table I — counter selection on all workloads", ctx.RenderTableI},
		{"fig2", "E2: Figure 2 — R²/Adj.R² progression", ctx.RenderFig2},
		{"table2", "E3: Table II — 10-fold cross validation", ctx.RenderTableII},
		{"fig3", "E4: Figure 3 — per-workload MAPE", ctx.RenderFig3},
		{"fig4", "E5: Figure 4 — training scenarios", ctx.RenderFig4},
		{"fig5a", "E6: Figure 5a — actual vs estimated (scenario 2)", ctx.RenderFig5a},
		{"fig5b", "E7: Figure 5b — actual vs estimated (scenario 3)", ctx.RenderFig5b},
		{"table3", "E8: Table III — PCC of selected counters", ctx.RenderTableIII},
		{"fig6", "E9: Figure 6 — PCC of all counters", ctx.RenderFig6},
		{"table4", "E10: Table IV — selection on synthetic only", ctx.RenderTableIV},
		{"seventh", "E11: extended selection / VIF explosion", func() (string, error) { return ctx.RenderSeventh(11) }},
		{"ablations", "E12: design-choice ablations", ctx.RenderAblations},
		{"baselines", "E13: baseline comparison", ctx.RenderBaselines},
		{"strategies", "E14: selection-strategy comparison (future work)", ctx.RenderStrategies},
		{"transform", "E15: stage-2 transformation search", ctx.RenderTransformations},
		{"hetero", "Breusch–Pagan heteroscedasticity test", ctx.RenderHeteroscedasticity},
		{"stability", "E16: bootstrap coefficient stability", ctx.RenderStability},
		{"crossplatform", "E17: x86 vs embedded ARM accuracy", ctx.RenderCrossPlatform},
	}

	want := strings.ToLower(*exp)
	found := false
	for _, r := range all {
		if want != "all" && want != r.id {
			continue
		}
		found = true
		out, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", r.desc, out)
	}
	if !found {
		fmt.Fprintf(os.Stderr, "expreport: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
