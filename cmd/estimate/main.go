// Command estimate is the deployment side of the workflow: it trains
// (or loads) an Equation-1 model and estimates power for counter
// samples supplied as CSV — the format cmd/acquire exports.
//
// Usage:
//
//	estimate -train model.json            # calibrate and save a model
//	estimate -model model.json data.csv   # estimate power for CSV rows
//
// The CSV must contain freq_mhz and voltage_v columns plus one column
// per model event (PAPI names, rates in events/second) — exactly what
// cmd/acquire emits. A power_w column, when present, is used to report
// the estimation error.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/buildinfo"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/stats"
	"pmcpower/internal/workloads"
)

func main() {
	train := flag.String("train", "", "calibrate a model on the simulated platform and write it to this path")
	modelPath := flag.String("model", "", "trained model JSON to load")
	seed := flag.Uint64("seed", 42, "calibration seed for -train")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("estimate"))
		return
	}

	if err := run(*train, *modelPath, *seed, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "estimate:", err)
		os.Exit(1)
	}
}

func run(trainPath, modelPath string, seed uint64, args []string) error {
	if trainPath != "" {
		return calibrate(trainPath, seed)
	}
	if modelPath == "" || len(args) != 1 {
		return fmt.Errorf("usage: estimate -train model.json | estimate -model model.json data.csv")
	}
	return estimate(modelPath, args[0])
}

func calibrate(outPath string, seed uint64) error {
	// Counter selection followed by full-range training — the
	// expensive, once-per-platform step.
	selDS, err := acquisition.Acquire(acquisition.Options{Seed: seed}, workloads.Active(), []int{2400})
	if err != nil {
		return err
	}
	steps, err := core.SelectEvents(selDS.Rows, core.SelectOptions{Count: 6})
	if err != nil {
		return err
	}
	events := core.Events(steps)
	fmt.Fprintf(os.Stderr, "selected counters: %v\n", pmu.ShortNames(events))

	full, err := acquisition.Acquire(acquisition.Options{Seed: seed, Events: events},
		workloads.Active(), []int{1200, 1600, 2000, 2400, 2600})
	if err != nil {
		return err
	}
	m, err := core.Train(full.Rows, events, core.TrainOptions{})
	if err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s (R²=%.4f on %d experiments)\n", outPath, m.R2(), len(full.Rows))
	return nil
}

func estimate(modelPath, csvPath string) error {
	mf, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer mf.Close()
	m, err := core.ReadJSON(mf)
	if err != nil {
		return err
	}

	df, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer df.Close()
	cr := csv.NewReader(df)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("reading CSV header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, need := range []string{"freq_mhz", "voltage_v"} {
		if _, ok := col[need]; !ok {
			return fmt.Errorf("CSV lacks required column %q", need)
		}
	}
	for _, id := range m.Events {
		if _, ok := col[pmu.Lookup(id).Name]; !ok {
			return fmt.Errorf("CSV lacks model event column %q", pmu.Lookup(id).Name)
		}
	}
	_, hasPower := col["power_w"]
	wlCol, hasWorkload := col["workload"]

	fmt.Printf("%-16s %9s %9s", "workload", "freq_mhz", "est_w")
	if hasPower {
		fmt.Printf(" %9s %8s", "actual_w", "err%%"[:4])
	}
	fmt.Println()

	var actual, predicted []float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("CSV line %d: %w", line, err)
		}
		get := func(name string) (float64, error) {
			v, err := strconv.ParseFloat(rec[col[name]], 64)
			if err != nil {
				return 0, fmt.Errorf("CSV line %d, column %s: %w", line, name, err)
			}
			return v, nil
		}
		freq, err := get("freq_mhz")
		if err != nil {
			return err
		}
		volt, err := get("voltage_v")
		if err != nil {
			return err
		}
		row := &acquisition.Row{
			FreqMHz:  int(freq),
			VoltageV: volt,
			Rates:    map[pmu.EventID]float64{},
		}
		for _, id := range m.Events {
			v, err := get(pmu.Lookup(id).Name)
			if err != nil {
				return err
			}
			row.Rates[id] = v
		}
		est := m.Predict(row)
		name := "-"
		if hasWorkload {
			name = rec[wlCol]
		}
		fmt.Printf("%-16s %9.0f %9.1f", name, freq, est)
		if hasPower {
			act, err := get("power_w")
			if err != nil {
				return err
			}
			actual = append(actual, act)
			predicted = append(predicted, est)
			fmt.Printf(" %9.1f %+7.1f%%", act, (est-act)/act*100)
		}
		fmt.Println()
	}
	if hasPower && len(actual) > 0 {
		ape, err := stats.APEDetail(actual, predicted)
		if err != nil {
			return fmt.Errorf("computing MAPE: %w", err)
		}
		fmt.Printf("\nMAPE over %d rows: %.2f%%\n", ape.Used, ape.MAPE)
		if ape.Skipped > 0 {
			fmt.Printf("warning: %d rows excluded (near-zero actual power)\n", ape.Skipped)
		}
	}
	return nil
}
