// Command loadgen is the deterministic load harness for the pmcpowerd
// serving path. It synthesizes NDJSON estimate traffic (sessions ×
// samples, seeded through internal/rng so two runs send byte-identical
// bodies), drives it at a fixed concurrency, and reports throughput,
// request-latency quantiles, and shed rate as a machine-readable JSON
// document.
//
// Modes:
//
//	loadgen -mode compare            # self-hosted A/B: legacy serving vs
//	                                 # sharded serving, plus an overload leg
//	                                 # with admission control on (BENCH_7)
//	loadgen -mode http               # one self-hosted run, default config
//	loadgen -mode http -legacy       # one self-hosted run, seed-faithful path
//	loadgen -mode http -addr URL     # drive a live pmcpowerd
//	loadgen -mode engine             # in-process EstimateSample, no sockets:
//	                                 # the contended serving-core measurement
//	loadgen -validate -json FILE     # strict-decode a report and check its
//	                                 # invariants (CI gate), no load generated
//
// The report schema is "pmcpower/loadgen/v1": a runs[] array plus an
// optional comparison block; -validate decodes it with unknown fields
// disallowed, so the committed BENCH_7.json cannot silently drift from
// what the tool writes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/buildinfo"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/rng"
	"pmcpower/internal/serve"
	"pmcpower/internal/workloads"
)

// Report is the loadgen output document.
type Report struct {
	Schema    string     `json:"schema"`
	Generated string     `json:"generated"`
	Machine   string     `json:"machine"`
	Config    RunConfig  `json:"config"`
	Runs      []RunStats `json:"runs"`
	// Comparison is present in compare mode: candidate vs baseline
	// estimate-path throughput on the same traffic and machine.
	Comparison *Comparison `json:"comparison,omitempty"`
}

// RunConfig is the traffic shape shared by every run in the report.
type RunConfig struct {
	Sessions          int    `json:"sessions"`
	SamplesPerSession int    `json:"samples_per_session"`
	Concurrency       int    `json:"concurrency"`
	Batch             int    `json:"batch"`
	Seed              uint64 `json:"seed"`
	// Repeat is how many times each leg ran; the reported run is the
	// median by throughput, damping noisy-neighbor variance.
	Repeat int `json:"repeat,omitempty"`
}

// RunStats is one measured run.
type RunStats struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"` // "http" or "engine"
	Legacy        bool    `json:"legacy,omitempty"`
	Samples       int     `json:"samples"`  // accepted estimates
	Requests      int     `json:"requests"` // admitted HTTP requests (0 in engine mode)
	DurationS     float64 `json:"duration_s"`
	ThroughputSPS float64 `json:"throughput_sps"` // accepted samples per second
	P50MS         float64 `json:"p50_ms"`         // request (http) or push (engine) latency
	P99MS         float64 `json:"p99_ms"`
	Shed          uint64  `json:"shed"`      // requests refused by admission control
	ShedRate      float64 `json:"shed_rate"` // shed / (requests + shed)
	Errors        int     `json:"errors"`
}

// Comparison relates two named runs from the same report.
type Comparison struct {
	Baseline  string  `json:"baseline"`
	Candidate string  `json:"candidate"`
	Speedup   float64 `json:"speedup"`
}

const schemaV1 = "pmcpower/loadgen/v1"

func main() {
	mode := flag.String("mode", "compare", "compare | http | engine")
	addr := flag.String("addr", "", "drive a live pmcpowerd at this base URL instead of self-hosting (http mode only)")
	model := flag.String("model", "", "model key to estimate against (default: the daemon's sole model)")
	sessions := flag.Int("sessions", 64, "concurrent session ids")
	samples := flag.Int("samples", 400, "samples per session")
	conc := flag.Int("conc", 64, "concurrent client streams")
	batch := flag.Int("batch", 32, "samples per HTTP request")
	seed := flag.Uint64("seed", 42, "traffic seed (identical seeds send identical bodies)")
	repeat := flag.Int("repeat", 1, "run each leg this many times and report the median-throughput run")
	legacy := flag.Bool("legacy", false, "self-host with the legacy (pre-sharding) serving path")
	jsonPath := flag.String("json", "", "write (or with -validate, read) the report at this path")
	validate := flag.Bool("validate", false, "validate an existing report instead of generating load")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the load run to this path")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.Format("loadgen"))
		return
	}
	if *validate {
		if *jsonPath == "" {
			fatal(fmt.Errorf("-validate requires -json FILE"))
		}
		if err := validateReport(*jsonPath); err != nil {
			fatal(fmt.Errorf("%s: %w", *jsonPath, err))
		}
		fmt.Printf("loadgen: %s validates against %s\n", *jsonPath, schemaV1)
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := RunConfig{Sessions: *sessions, SamplesPerSession: *samples, Concurrency: *conc, Batch: *batch, Seed: *seed, Repeat: *repeat}
	report := Report{
		Schema:    schemaV1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Machine:   fmt.Sprintf("%s/%s, %d cpu, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
		Config:    cfg,
	}

	switch *mode {
	case "compare":
		if *addr != "" {
			fatal(fmt.Errorf("-mode compare is self-hosted; -addr applies to -mode http"))
		}
		runs, cmp, err := runCompare(cfg)
		if err != nil {
			fatal(err)
		}
		report.Runs, report.Comparison = runs, cmp
	case "http":
		stats, err := runHTTPMode(cfg, *addr, *model, *legacy)
		if err != nil {
			fatal(err)
		}
		report.Runs = []RunStats{stats}
	case "engine":
		stats, err := runEngineMode(cfg)
		if err != nil {
			fatal(err)
		}
		report.Runs = []RunStats{stats}
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fatal(err)
		}
	}
	os.Stdout.Write(out)
	for _, r := range report.Runs {
		fmt.Fprintf(os.Stderr, "loadgen: %-18s %9.0f samples/s  p50 %7.3f ms  p99 %7.3f ms  shed %5.1f%%\n",
			r.Name, r.ThroughputSPS, r.P50MS, r.P99MS, 100*r.ShedRate)
	}
	if report.Comparison != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %s is %.2fx %s\n",
			report.Comparison.Candidate, report.Comparison.Speedup, report.Comparison.Baseline)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

// --- traffic synthesis ------------------------------------------------

func loadgenEvents() []pmu.EventID {
	var out []pmu.EventID
	for _, n := range []string{"LST_INS", "STL_CCY", "L3_TCM", "TOT_CYC", "BR_UCN", "BR_TKN"} {
		out = append(out, pmu.MustByName(n).ID)
	}
	return out
}

// trainModel calibrates the model every self-hosted run serves — the
// same deterministic simulated campaign the serve tests use.
func trainModel(seed uint64) (*core.Model, error) {
	ds, err := acquisition.Acquire(acquisition.Options{Seed: seed, Events: loadgenEvents()},
		workloads.Active(), []int{2000, 2400})
	if err != nil {
		return nil, err
	}
	return core.Train(ds.Rows, loadgenEvents(), core.TrainOptions{})
}

// sessionBodies renders session i's traffic as per-request NDJSON
// bodies (batch samples each), deterministically from (seed, i). Rates
// are jittered around plausible per-cycle magnitudes; timestamps rise
// monotonically within the session.
func sessionBodies(seed uint64, session int, events []string, samples, batch int) []string {
	r := rng.Stream(seed, uint64(session)+1)
	freqs := []int{2000, 2400}
	var bodies []string
	var sb strings.Builder
	for j := 0; j < samples; j++ {
		sb.WriteString(`{"time_ns":`)
		fmt.Fprintf(&sb, "%d", uint64(j+1)*1_000_000)
		fmt.Fprintf(&sb, `,"freq_mhz":%d,"voltage_v":%.3f,"rates":{`, freqs[r.Intn(len(freqs))], 1.05+0.1*r.Float64())
		for k, ev := range events {
			if k > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `"%s":%.6f`, ev, 0.01+0.5*r.Float64())
		}
		sb.WriteString("}}\n")
		if (j+1)%batch == 0 || j == samples-1 {
			bodies = append(bodies, sb.String())
			sb.Reset()
		}
	}
	return bodies
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// --- HTTP load --------------------------------------------------------

// httpRun drives base with cfg's traffic and measures it. Sessions are
// partitioned across cfg.Concurrency workers; each worker replays its
// sessions' request sequence in order (a session's batches must stay
// ordered — timestamps are monotonic).
func httpRun(name string, base, model string, cfg RunConfig, events []string, legacy bool) (RunStats, error) {
	stats := RunStats{Name: name, Mode: "http", Legacy: legacy}
	// One body set per session, prepared before the clock starts.
	bodies := make([][]string, cfg.Sessions)
	for i := range bodies {
		bodies[i] = sessionBodies(cfg.Seed, i, events, cfg.SamplesPerSession, cfg.Batch)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}}
	defer client.CloseIdleConnections()

	type workerOut struct {
		latencies []float64 // seconds, one per admitted request
		samples   int
		requests  int
		shed      int
		errors    int
	}
	outs := make([]workerOut, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := &outs[w]
			needle := []byte(`"instant_w"`)
			var respBuf bytes.Buffer
			for s := w; s < cfg.Sessions; s += cfg.Concurrency {
				url := fmt.Sprintf("%s/v1/estimate?model=%s&session=ld-%d", base, model, s)
				for _, body := range bodies[s] {
					t0 := time.Now()
					resp, err := client.Post(url, "application/x-ndjson", strings.NewReader(body))
					if err != nil {
						o.errors++
						continue
					}
					respBuf.Reset()
					_, err = respBuf.ReadFrom(resp.Body)
					resp.Body.Close()
					d := time.Since(t0).Seconds()
					if err != nil {
						o.errors++
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK:
						o.latencies = append(o.latencies, d)
						o.requests++
						o.samples += bytes.Count(respBuf.Bytes(), needle)
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						o.shed++
					default:
						o.errors++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stats.DurationS = time.Since(start).Seconds()

	var lat []float64
	for i := range outs {
		lat = append(lat, outs[i].latencies...)
		stats.Samples += outs[i].samples
		stats.Requests += outs[i].requests
		stats.Shed += uint64(outs[i].shed)
		stats.Errors += outs[i].errors
	}
	sort.Float64s(lat)
	stats.ThroughputSPS = float64(stats.Samples) / stats.DurationS
	stats.P50MS = quantile(lat, 0.50) * 1e3
	stats.P99MS = quantile(lat, 0.99) * 1e3
	if total := float64(stats.Requests) + float64(stats.Shed); total > 0 {
		stats.ShedRate = float64(stats.Shed) / total
	}
	if stats.Errors > 0 {
		return stats, fmt.Errorf("run %s: %d request errors", name, stats.Errors)
	}
	return stats, nil
}

// streamPace is the think time between batch writes on a streaming
// session: fleet hosts emit counter samples on a cadence, so a stream
// holds its connection (and admission token) open between batches
// instead of dumping its whole body in one burst.
const streamPace = 2 * time.Millisecond

// streamingRun drives base with one long-lived NDJSON stream per
// session: the whole session rides a single request whose body is fed
// batch by paced batch while the response is consumed concurrently.
// This is the fleet's steady-state shape — and the one an in-flight
// cap can push back on, since every open stream holds an admission
// token for its lifetime. A refused stream costs one 429 and its
// samples are dropped (no retry), so the shed rate is stream-level.
func streamingRun(name, base, model string, cfg RunConfig, events []string) (RunStats, error) {
	stats := RunStats{Name: name, Mode: "http"}
	bodies := make([][]string, cfg.Sessions)
	for i := range bodies {
		bodies[i] = sessionBodies(cfg.Seed, i, events, cfg.SamplesPerSession, cfg.Batch)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Concurrency * 2,
		MaxIdleConnsPerHost: cfg.Concurrency * 2,
	}}
	defer client.CloseIdleConnections()

	type workerOut struct {
		latencies []float64
		samples   int
		requests  int
		shed      int
		errors    int
	}
	outs := make([]workerOut, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := &outs[w]
			needle := []byte(`"instant_w"`)
			var respBuf bytes.Buffer
			for s := w; s < cfg.Sessions; s += cfg.Concurrency {
				url := fmt.Sprintf("%s/v1/estimate?model=%s&session=ld-%d", base, model, s)
				pr, pw := io.Pipe()
				go func(batches []string) {
					for k, b := range batches {
						if k > 0 {
							time.Sleep(streamPace)
						}
						if _, err := pw.Write([]byte(b)); err != nil {
							return // stream refused or torn down
						}
					}
					pw.Close()
				}(bodies[s])
				t0 := time.Now()
				resp, err := client.Post(url, "application/x-ndjson", pr)
				if err != nil {
					pr.CloseWithError(err)
					o.errors++
					continue
				}
				if resp.StatusCode != http.StatusOK {
					// Unblock the feeder; the request is already decided.
					pr.CloseWithError(fmt.Errorf("stream refused: %s", resp.Status))
				}
				respBuf.Reset()
				_, rerr := respBuf.ReadFrom(resp.Body)
				resp.Body.Close()
				d := time.Since(t0).Seconds()
				switch {
				case resp.StatusCode == http.StatusOK && rerr == nil:
					o.latencies = append(o.latencies, d)
					o.requests++
					o.samples += bytes.Count(respBuf.Bytes(), needle)
				case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
					o.shed++
				default:
					o.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	stats.DurationS = time.Since(start).Seconds()

	var lat []float64
	for i := range outs {
		lat = append(lat, outs[i].latencies...)
		stats.Samples += outs[i].samples
		stats.Requests += outs[i].requests
		stats.Shed += uint64(outs[i].shed)
		stats.Errors += outs[i].errors
	}
	sort.Float64s(lat)
	stats.ThroughputSPS = float64(stats.Samples) / stats.DurationS
	stats.P50MS = quantile(lat, 0.50) * 1e3
	stats.P99MS = quantile(lat, 0.99) * 1e3
	if total := float64(stats.Requests) + float64(stats.Shed); total > 0 {
		stats.ShedRate = float64(stats.Shed) / total
	}
	if stats.Errors > 0 {
		return stats, fmt.Errorf("run %s: %d request errors", name, stats.Errors)
	}
	return stats, nil
}

// selfhost spins up an in-process pmcpowerd serving one freshly
// calibrated model named "m" and runs fn against it.
func selfhost(cfg RunConfig, scfg serve.Config, fn func(base string, events []string) (RunStats, error)) (RunStats, error) {
	m, err := trainModel(cfg.Seed)
	if err != nil {
		return RunStats{}, err
	}
	reg := serve.NewRegistry()
	if _, err := reg.Add("m", m); err != nil {
		return RunStats{}, err
	}
	scfg.Registry = reg
	srv := serve.New(scfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var events []string
	for _, id := range loadgenEvents() {
		events = append(events, pmu.Lookup(id).Name)
	}
	return fn(ts.URL, events)
}

func runHTTPMode(cfg RunConfig, addr, model string, legacy bool) (RunStats, error) {
	if addr != "" {
		events, err := liveEvents(addr, model)
		if err != nil {
			return RunStats{}, err
		}
		return httpRun("live-http", strings.TrimRight(addr, "/"), model, cfg, events, false)
	}
	name := "sharded-http"
	if legacy {
		name = "legacy-http"
	}
	return selfhost(cfg, serve.Config{LegacyServing: legacy}, func(base string, events []string) (RunStats, error) {
		return httpRun(name, base, "m", cfg, events, legacy)
	})
}

// liveEvents asks a running daemon which events its model wants, so
// generated samples cover them.
func liveEvents(addr, model string) ([]string, error) {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var infos []serve.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("decoding /v1/models: %w", err)
	}
	name := strings.SplitN(model, "@", 2)[0]
	for i := len(infos) - 1; i >= 0; i-- {
		if name == "" || infos[i].Name == name {
			return infos[i].Events, nil
		}
	}
	return nil, fmt.Errorf("no model %q registered at %s", model, addr)
}

// --- engine load ------------------------------------------------------

// runEngineMode measures the serving core without sockets or JSON:
// concurrent goroutines pushing pre-built samples through
// Server.EstimateSample — admission, registry, sessions, and metrics
// included, transport excluded.
func runEngineMode(cfg RunConfig) (RunStats, error) {
	m, err := trainModel(cfg.Seed)
	if err != nil {
		return RunStats{}, err
	}
	reg := serve.NewRegistry()
	if _, err := reg.Add("m", m); err != nil {
		return RunStats{}, err
	}
	srv := serve.New(serve.Config{Registry: reg})
	defer srv.Close()

	// Pre-build each session's samples outside the clock.
	events := loadgenEvents()
	sessionSamples := make([][]core.CounterSample, cfg.Sessions)
	freqs := []int{2000, 2400}
	for s := range sessionSamples {
		r := rng.Stream(cfg.Seed, uint64(s)+1)
		rows := make([]core.CounterSample, cfg.SamplesPerSession)
		for j := range rows {
			rates := make(map[pmu.EventID]float64, len(events))
			for _, id := range events {
				rates[id] = 0.01 + 0.5*r.Float64()
			}
			rows[j] = core.CounterSample{
				TimeNs:   uint64(j+1) * 1_000_000,
				FreqMHz:  freqs[r.Intn(len(freqs))],
				VoltageV: 1.05 + 0.1*r.Float64(),
				Rates:    rates,
			}
		}
		sessionSamples[s] = rows
	}

	stats := RunStats{Name: "engine", Mode: "engine"}
	lats := make([][]float64, cfg.Concurrency)
	errCh := make(chan error, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, cfg.SamplesPerSession)
			for s := w; s < cfg.Sessions; s += cfg.Concurrency {
				sid := fmt.Sprintf("ld-%d", s)
				for _, cs := range sessionSamples[s] {
					t0 := time.Now()
					if _, err := srv.EstimateSample("m", sid, cs); err != nil {
						errCh <- fmt.Errorf("session %s: %w", sid, err)
						return
					}
					lat = append(lat, time.Since(t0).Seconds())
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	stats.DurationS = time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		return stats, err
	}

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	stats.Samples = len(all)
	stats.ThroughputSPS = float64(stats.Samples) / stats.DurationS
	stats.P50MS = quantile(all, 0.50) * 1e3
	stats.P99MS = quantile(all, 0.99) * 1e3
	return stats, nil
}

// --- compare mode -----------------------------------------------------

// medianOf runs one leg cfg.Repeat times and keeps the run with
// median throughput, damping noisy-neighbor interference without
// cherry-picking a best case.
func medianOf(cfg RunConfig, leg func() (RunStats, error)) (RunStats, error) {
	n := cfg.Repeat
	if n < 1 {
		n = 1
	}
	runs := make([]RunStats, 0, n)
	for i := 0; i < n; i++ {
		r, err := leg()
		if err != nil {
			return r, err
		}
		runs = append(runs, r)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].ThroughputSPS < runs[j].ThroughputSPS })
	return runs[len(runs)/2], nil
}

// runCompare produces the BENCH_7 document: the legacy serving path
// vs the sharded one on identical traffic, an overload leg with the
// admission gate engaged, and the in-process engine measurement.
func runCompare(cfg RunConfig) ([]RunStats, *Comparison, error) {
	legacy, err := medianOf(cfg, func() (RunStats, error) {
		return selfhost(cfg, serve.Config{LegacyServing: true}, func(base string, events []string) (RunStats, error) {
			return httpRun("legacy-http", base, "m", cfg, events, true)
		})
	})
	if err != nil {
		return nil, nil, err
	}
	sharded, err := medianOf(cfg, func() (RunStats, error) {
		return selfhost(cfg, serve.Config{}, func(base string, events []string) (RunStats, error) {
			return httpRun("sharded-http", base, "m", cfg, events, false)
		})
	})
	if err != nil {
		return nil, nil, err
	}
	// Overload leg: long-lived concurrent streams (the fleet's actual
	// traffic shape — a request per session held open while samples
	// trickle) against an in-flight cap far below the offered
	// concurrency. Excess streams are refused at admit with 429 and
	// Retry-After instead of all N multiplexing into unbounded
	// per-stream latency, so the admitted streams' p99 stays bounded
	// and the refusals show up as the shed rate.
	maxInflight := cfg.Concurrency / 16
	if maxInflight < 1 {
		maxInflight = 1
	}
	overCfg := serve.Config{MaxInFlight: maxInflight}
	overload, err := medianOf(cfg, func() (RunStats, error) {
		return selfhost(cfg, overCfg, func(base string, events []string) (RunStats, error) {
			return streamingRun("overload-shedding", base, "m", cfg, events)
		})
	})
	if err != nil {
		return nil, nil, err
	}
	engine, err := medianOf(cfg, func() (RunStats, error) { return runEngineMode(cfg) })
	if err != nil {
		return nil, nil, err
	}
	runs := []RunStats{legacy, sharded, overload, engine}
	cmp := &Comparison{
		Baseline:  "legacy-http",
		Candidate: "sharded-http",
		Speedup:   sharded.ThroughputSPS / legacy.ThroughputSPS,
	}
	return runs, cmp, nil
}

// --- report validation ------------------------------------------------

// validateReport strict-decodes a loadgen report and checks its
// invariants; CI runs it over the smoke report and the committed
// BENCH_7.json so the schema cannot drift silently.
func validateReport(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("strict decode: %w", err)
	}
	if rep.Schema != schemaV1 {
		return fmt.Errorf("schema = %q, want %q", rep.Schema, schemaV1)
	}
	if rep.Machine == "" || rep.Generated == "" {
		return fmt.Errorf("machine/generated metadata missing")
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	names := make(map[string]bool, len(rep.Runs))
	for _, r := range rep.Runs {
		if r.Name == "" {
			return fmt.Errorf("run with empty name")
		}
		if names[r.Name] {
			return fmt.Errorf("duplicate run %q", r.Name)
		}
		names[r.Name] = true
		if r.Mode != "http" && r.Mode != "engine" {
			return fmt.Errorf("run %s: mode = %q", r.Name, r.Mode)
		}
		if r.Samples <= 0 || r.DurationS <= 0 || r.ThroughputSPS <= 0 {
			return fmt.Errorf("run %s: non-positive sample/duration/throughput", r.Name)
		}
		if r.P99MS < r.P50MS {
			return fmt.Errorf("run %s: p99 %.3f < p50 %.3f", r.Name, r.P99MS, r.P50MS)
		}
		if r.ShedRate < 0 || r.ShedRate > 1 {
			return fmt.Errorf("run %s: shed_rate = %v", r.Name, r.ShedRate)
		}
		if r.Errors != 0 {
			return fmt.Errorf("run %s: %d errors recorded", r.Name, r.Errors)
		}
	}
	if c := rep.Comparison; c != nil {
		if !names[c.Baseline] || !names[c.Candidate] {
			return fmt.Errorf("comparison references unknown runs %q/%q", c.Baseline, c.Candidate)
		}
		if c.Speedup <= 0 {
			return fmt.Errorf("comparison speedup = %v", c.Speedup)
		}
	}
	return nil
}
