package pmcpower

// End-to-end pipeline test: the complete workflow of the paper on a
// reduced matrix — acquisition through trace archives, counter
// selection, model training, prediction — exercised from the outside,
// the way cmd/powermodel drives it.

import (
	"math"
	"testing"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

func TestEndToEndWorkflow(t *testing.T) {
	// A reduced but structurally complete campaign: six workloads
	// spanning compute/memory/mixed corners, two DVFS states, all 54
	// counters (forcing multiplexed runs).
	var wls []*workloads.Workload
	for _, n := range []string{"compute", "sqrt", "memory_read", "matmul", "md", "swim", "addpd"} {
		wls = append(wls, workloads.MustByName(n))
	}
	selDS, err := acquisition.Acquire(acquisition.Options{Seed: 123}, wls, []int{2400})
	if err != nil {
		t.Fatal(err)
	}

	steps, err := core.SelectEvents(selDS.Rows, core.SelectOptions{Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	events := core.Events(steps)

	acqEvents := append(append([]pmu.EventID(nil), events...), pmu.MustByName("TOT_CYC").ID)
	seen := map[pmu.EventID]bool{}
	var dedup []pmu.EventID
	for _, id := range acqEvents {
		if !seen[id] {
			seen[id] = true
			dedup = append(dedup, id)
		}
	}
	full, err := acquisition.Acquire(acquisition.Options{Seed: 123, Events: dedup}, wls, []int{1200, 2400})
	if err != nil {
		t.Fatal(err)
	}

	m, err := core.Train(full.Rows, events, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.R2() < 0.9 {
		t.Fatalf("end-to-end fit R² = %.3f", m.R2())
	}

	// Predict an entirely fresh acquisition of a held-out workload.
	test, err := acquisition.Acquire(acquisition.Options{Seed: 999, Events: dedup},
		[]*workloads.Workload{workloads.MustByName("mulpd")}, []int{2400})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range test.Rows {
		est := m.Predict(r)
		ape := math.Abs(est-r.PowerW) / r.PowerW * 100
		if ape > 30 {
			t.Fatalf("held-out mulpd (%d threads): estimated %.1f W vs measured %.1f W (%.1f%%)",
				r.Threads, est, r.PowerW, ape)
		}
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	// The whole pipeline — simulator, plugins, traces, post-processing,
	// selection — must be bit-reproducible from the seed.
	run := func() []pmu.EventID {
		wls := []*workloads.Workload{
			workloads.MustByName("compute"),
			workloads.MustByName("memory_read"),
			workloads.MustByName("md"),
		}
		ds, err := acquisition.Acquire(acquisition.Options{Seed: 7}, wls, []int{2000})
		if err != nil {
			t.Fatal(err)
		}
		steps, err := core.SelectEvents(ds.Rows, core.SelectOptions{Count: 3})
		if err != nil {
			t.Fatal(err)
		}
		return core.Events(steps)
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pipeline not deterministic: %v vs %v", pmu.ShortNames(a), pmu.ShortNames(b))
		}
	}
}
