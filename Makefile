# Convenience targets for the pmcpower reproduction.

GO ?= go

.PHONY: all build vet test race verify scenarios bench bench-hotpath bench-rls loadtest loadtest-smoke report examples trace-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector run of the whole tree — the concurrent pipeline
# (internal/parallel and its call sites) must stay race-free.
race:
	$(GO) test -race ./...

# The full tier-1 gate for concurrent code: build, vet, tests, the
# race detector, and the streaming-refit microbenchmarks (which carry
# their own allocation gates in test form; the bench run here catches
# order-of-magnitude regressions by inspection).
verify: build vet test race bench-rls

# The stress-scenario matrix (internal/scenario): every built-in
# scenario against a freshly trained model, under the race detector,
# with a JSON report left in scenarios.json. Non-zero exit on any
# failed checkpoint — the same command gates CI.
scenarios:
	$(GO) run -race ./cmd/scenarios -json scenarios.json

# Timed regeneration of every paper artifact (E1–E17).
bench:
	$(GO) test -bench=. -benchmem ./...

# The selection/CV/training hot path only, with allocation counts —
# compare against the committed BENCH_5.json baseline.
bench-hotpath:
	$(GO) test -run XXX -benchmem -benchtime=20x \
		-bench 'BenchmarkModelTraining$$|BenchmarkSelectionSerial$$|BenchmarkSelectionParallel$$|BenchmarkSelectionExact$$|BenchmarkCrossValidationSerial$$|BenchmarkCrossValidationParallel$$|BenchmarkQRAppend|BenchmarkFitKernels' .

# The streaming-refit path: per-sample RLS update vs batch window
# refit — compare against the committed BENCH_6.json baseline.
bench-rls:
	$(GO) test -run XXX -benchmem -benchtime=20x \
		-bench 'BenchmarkRowQRAppendRow|BenchmarkRLSPush$$|BenchmarkRLSPushSolve$$|BenchmarkRLSBatchRefit$$' \
		./internal/mat ./internal/stats

# Serving loadtest: self-hosted daemon, 64 concurrent streams, the
# single-lock legacy path vs. the sharded path, plus an overload leg
# with admission control engaged. Writes the committed BENCH_7.json
# baseline (median of three repeats) and strict-validates it.
loadtest:
	$(GO) run ./cmd/loadgen -mode compare \
		-sessions 64 -samples 800 -conc 64 -batch 200 -repeat 3 \
		-json BENCH_7.json
	$(GO) run ./cmd/loadgen -validate -json BENCH_7.json

# A small fixed workload for CI: exercises the full client/server
# loop, the report writer, and the strict validator in a few seconds
# without asserting machine-dependent throughput ratios.
loadtest-smoke:
	$(GO) run ./cmd/loadgen -mode compare \
		-sessions 8 -samples 64 -conc 8 -batch 16 \
		-json loadtest-smoke.json
	$(GO) run ./cmd/loadgen -validate -json loadtest-smoke.json

# Text report of every table and figure.
report:
	$(GO) run ./cmd/expreport

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/counter_selection
	$(GO) run ./examples/dvfs_sweep
	$(GO) run ./examples/unseen_workloads
	$(GO) run ./examples/online_monitor
	$(GO) run ./examples/percore_power

# Run the full pipeline with span tracing enabled and validate the
# exported Chrome trace JSON (open trace-demo.json in Perfetto).
trace-demo:
	$(GO) run ./cmd/powermodel -counters 3 -folds 5 -j 2 -trace trace-demo.json
	$(GO) run ./cmd/tracecheck -require powermodel,acquire,selection,fit,cv,cv-fold,parallel.worker trace-demo.json

# The outputs recorded in the repository.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
