// Package pmcpower reproduces "A Statistical Approach to Power
// Estimation for x86 Processors" (Chadha, Ilsche, Bielert, Nagel —
// IPDPSW 2017): a statistically rigorous workflow for building
// run-time CPU power models from performance monitoring counters.
//
// The repository contains the full system the paper describes, built
// from scratch in Go with the real hardware replaced by a calibrated
// simulator:
//
//   - internal/cpusim + internal/power: the dual-socket Haswell-EP
//     platform, its PMU-visible behaviour and its ground-truth power;
//   - internal/pmu: the 54 standardized PAPI preset counters and the
//     hardware multiplexing constraints;
//   - internal/workloads: roco2 synthetic kernels and SPEC OMP2012
//     proxy applications;
//   - internal/trace, internal/metricplugin, internal/phaseprofile,
//     internal/acquisition: the Score-P/OTF2-style acquisition
//     pipeline, from metric plugins through trace archives to phase
//     profiles and regression datasets;
//   - internal/mat + internal/stats: the linear algebra and statistics
//     (OLS, HC0–HC3, VIF, PCC, k-fold CV) the workflow needs;
//   - internal/core: the paper's contribution — Equation-1 feature
//     construction, Algorithm-1 counter selection, model training and
//     the four validation scenarios;
//   - internal/experiments: one function per paper table and figure;
//   - internal/baselines: the related-work comparison models.
//
// See README.md for a quickstart, DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-vs-measured comparison. The
// benchmarks in bench_test.go regenerate every table and figure.
package pmcpower
