module pmcpower

go 1.22
