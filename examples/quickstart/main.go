// Quickstart: acquire a small dataset on the simulated Haswell-EP
// node, train the paper's Equation-1 power model on six counters, and
// estimate the power of an unseen workload.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

func main() {
	// The counters of the paper's methodology: selected once by
	// Algorithm 1 (see examples/counter_selection), then reused.
	var events []pmu.EventID
	for _, name := range []string{"LST_INS", "STL_CCY", "L3_TCM", "TOT_CYC", "BR_UCN", "BR_TKN"} {
		events = append(events, pmu.MustByName(name).ID)
	}

	// Acquire training data: every workload except "md" at three DVFS
	// states. The acquisition layer simulates the full Score-P
	// pipeline — multiplexed PMC runs, trace archives, phase-profile
	// post-processing.
	var train []*workloads.Workload
	for _, w := range workloads.Active() {
		if w.Name != "md" {
			train = append(train, w)
		}
	}
	ds, err := acquisition.Acquire(acquisition.Options{Seed: 1, Events: events},
		train, []int{1200, 2000, 2600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acquired %d experiments over %d workloads\n", len(ds.Rows), len(train))

	// Train Equation 1: P = Σ αₙ·Eₙ·V²f + β·V²f + γ·V + δ.
	model, err := core.Train(ds.Rows, events, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s\n\n", model)

	// Estimate the power of the held-out workload at a frequency the
	// model has seen and one it interpolates.
	md := workloads.MustByName("md")
	test, err := acquisition.Acquire(acquisition.Options{Seed: 2, Events: events},
		[]*workloads.Workload{md}, []int{2000, 2400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("held-out workload md:")
	for _, row := range test.Rows {
		est := model.Predict(row)
		fmt.Printf("  f=%d MHz  measured %6.1f W   estimated %6.1f W   error %+5.1f%%\n",
			row.FreqMHz, row.PowerW, est, (est-row.PowerW)/row.PowerW*100)
	}
}
