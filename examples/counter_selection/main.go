// Counter selection: run the paper's Algorithm 1 live — greedy forward
// selection of PMC events by model R², with VIF-based
// multicollinearity monitoring — and watch what happens when the
// selection is pushed past the stable six counters (paper §IV-A).
//
// Run with: go run ./examples/counter_selection
package main

import (
	"fmt"
	"log"
	"math"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/workloads"
)

func main() {
	// Selection data: all workloads at the fixed selection frequency
	// with all 54 preset counters — which the hardware cannot record
	// at once, so the acquisition multiplexes them over several runs.
	plan, err := pmu.PlanRuns(pmu.AllIDs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recording %d PAPI presets requires %d runs per workload:\n", pmu.NumEvents(), len(plan))
	for i, set := range plan {
		prog, fixed := set.SlotsUsed()
		fmt.Printf("  run %d: %2d events (%d programmable slots of %d, %d fixed)\n",
			i+1, set.Len(), prog, pmu.ProgrammableSlots, fixed)
	}

	ds, err := acquisition.Acquire(acquisition.Options{Seed: 42}, workloads.Active(), []int{2400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nacquired %d experiments at 2400 MHz\n\n", len(ds.Rows))

	// Algorithm 1, extended past the paper's six counters to expose
	// the multicollinearity blow-up.
	steps, err := core.SelectEvents(ds.Rows, core.SelectOptions{Count: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("greedy selection path (Algorithm 1):")
	fmt.Printf("%-3s %-10s %8s %8s %10s\n", "#", "counter", "R²", "Adj.R²", "mean VIF")
	for i, s := range steps {
		vif := "n/a"
		if !math.IsNaN(s.MeanVIF) {
			vif = fmt.Sprintf("%.2f", s.MeanVIF)
		}
		marker := ""
		if s.MeanVIF > 10 {
			marker = "  <- multicollinearity problem (VIF > 10)"
		}
		if i == 5 {
			marker += "  <- the paper stops here"
		}
		fmt.Printf("%-3d %-10s %8.3f %8.3f %10s%s\n", i+1, pmu.Lookup(s.Event).Short, s.R2, s.AdjR2, vif, marker)
	}

	fmt.Println("\nnote how R² keeps creeping up while the VIF eventually explodes:")
	fmt.Println("extra counters add information the model cannot use *stably* —")
	fmt.Println("the limitation the paper discusses for the CA_SNP counter.")
}
