// Online monitor: the paper's motivating use case — "accurate
// real-time power information for efficient power management". A
// trained Equation-1 model is deployed as a streaming estimator fed by
// apapi-style counter samples from a live (simulated) run, next to a
// Bellosa-style integrating energy accountant. The estimates are
// compared against the reference instrumentation at the end.
//
// Run with: go run ./examples/online_monitor
package main

import (
	"fmt"
	"log"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/cpusim"
	"pmcpower/internal/metricplugin"
	"pmcpower/internal/pmu"
	"pmcpower/internal/power"
	"pmcpower/internal/rng"
	"pmcpower/internal/workloads"
)

func main() {
	var events []pmu.EventID
	for _, name := range []string{"LST_INS", "STL_CCY", "L3_TCM", "TOT_CYC", "BR_UCN", "BR_TKN"} {
		events = append(events, pmu.MustByName(name).ID)
	}

	// Train once, offline.
	ds, err := acquisition.Acquire(acquisition.Options{Seed: 42, Events: events},
		workloads.Active(), []int{1200, 1600, 2000, 2400, 2600})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(ds.Rows, events, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed model: %s\n\n", model)

	// "Live" run: the node executes a sequence of workload phases; an
	// apapi sampler delivers counter rates at 10 Hz; the online
	// estimator turns each sample into watts.
	platform := cpusim.HaswellEP()
	exec := cpusim.NewExecutor(platform)
	gtModel := power.DefaultModel()
	set, err := pmu.NewEventSet(events...)
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := metricplugin.NewApapiPlugin(set, 10)
	if err != nil {
		log.Fatal(err)
	}

	est, err := core.NewOnlineEstimator(model, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	acct, err := core.NewEnergyAccountant(model)
	if err != nil {
		log.Fatal(err)
	}

	schedule := []struct {
		workload string
		threads  int
		freq     int
		secs     float64
	}{
		{"idle", 1, 1200, 2},
		{"compute", 24, 2400, 3},
		{"memory_read", 24, 2400, 3},
		{"md", 24, 2600, 3},
		{"addpd", 24, 2600, 2},
		{"idle", 1, 1200, 2},
	}

	fmt.Printf("%-6s %-12s %6s %6s | %10s %10s %10s\n",
		"t[s]", "phase", "thr", "MHz", "truth[W]", "inst[W]", "ewma[W]")
	rnd := rng.New(99)
	now := uint64(0)
	var trueJ float64
	for pi, ph := range schedule {
		act, err := exec.Execute(cpusim.RunConfig{
			Workload:  workloads.MustByName(ph.workload),
			FreqMHz:   ph.freq,
			Threads:   ph.threads,
			DurationS: ph.secs,
		}, rnd.Split(uint64(pi)))
		if err != nil {
			log.Fatal(err)
		}
		gt, err := gtModel.NodePower(platform, act)
		if err != nil {
			log.Fatal(err)
		}
		truth := gt.TotalW
		trueJ += truth * ph.secs

		iv := &metricplugin.Interval{
			StartNs:  now,
			EndNs:    now + uint64(ph.secs*1e9),
			Activity: act,
			Platform: platform,
			Rand:     rnd.Split(uint64(1000 + pi)),
		}
		samples, err := sampler.Sample(iv)
		if err != nil {
			log.Fatal(err)
		}
		// Group per-tick samples into CounterSamples.
		ids := set.Events()
		perTick := map[uint64]map[pmu.EventID]float64{}
		var ticks []uint64
		for _, s := range samples {
			m, ok := perTick[s.TimeNs]
			if !ok {
				m = make(map[pmu.EventID]float64, len(ids))
				perTick[s.TimeNs] = m
				ticks = append(ticks, s.TimeNs)
			}
			m[ids[s.MetricIndex]] = s.Value
		}
		var lastEst core.Estimate
		for _, tick := range ticks {
			cs := core.CounterSample{
				TimeNs:   tick,
				Rates:    perTick[tick],
				VoltageV: act.CoreVoltageV,
				FreqMHz:  ph.freq,
			}
			lastEst, err = est.Push(cs)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := acct.Push(cs); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-6.1f %-12s %6d %6d | %10.1f %10.1f %10.1f\n",
			float64(now)/1e9, ph.workload, ph.threads, ph.freq,
			truth, lastEst.InstantW, lastEst.SmoothedW)
		now += uint64(ph.secs * 1e9)
	}

	estJ := acct.TotalJoules()
	fmt.Printf("\nenergy over %d s: reference %.0f J, estimated %.0f J (error %+.1f%%)\n",
		int(float64(now)/1e9), trueJ, estJ, (estJ-trueJ)/trueJ*100)
	fmt.Printf("samples processed: %d\n", est.Samples())
}
