// DVFS sweep: train the Equation-1 model across all five P-states and
// examine how accuracy holds up per frequency and per workload — the
// view behind the paper's Figure 3, plus a leave-one-frequency-out
// interpolation test that a per-frequency baseline cannot pass.
//
// Run with: go run ./examples/dvfs_sweep
package main

import (
	"fmt"
	"log"
	"strings"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/cpusim"
	"pmcpower/internal/pmu"
	"pmcpower/internal/stats"
	"pmcpower/internal/workloads"
)

func main() {
	var events []pmu.EventID
	for _, name := range []string{"LST_INS", "STL_CCY", "L3_TCM", "TOT_CYC", "BR_UCN", "BR_TKN"} {
		events = append(events, pmu.MustByName(name).ID)
	}
	platform := cpusim.HaswellEP()
	freqs := platform.Frequencies()

	ds, err := acquisition.Acquire(acquisition.Options{Seed: 42, Events: events},
		workloads.Active(), freqs)
	if err != nil {
		log.Fatal(err)
	}

	// Cross-validated accuracy per DVFS state.
	cv, err := core.CrossValidate(ds.Rows, events, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	perFreq := map[int][]float64{}
	for _, p := range cv.Predictions {
		perFreq[p.Row.FreqMHz] = append(perFreq[p.Row.FreqMHz], p.APE())
	}
	fmt.Println("10-fold CV accuracy per DVFS state:")
	for _, f := range freqs {
		m := stats.Mean(perFreq[f])
		fmt.Printf("  %4d MHz  MAPE %5.2f%%  %s\n", f, m, strings.Repeat("#", int(m*2+0.5)))
	}

	// Leave-one-frequency-out: train on four P-states, predict the
	// fifth. The V²f/V terms of Equation 1 make this interpolation
	// work — a per-frequency model has no mechanism for it.
	fmt.Println("\nleave-one-frequency-out interpolation:")
	for _, hold := range freqs {
		train := ds.Filter(func(r *acquisition.Row) bool { return r.FreqMHz != hold })
		test := ds.AtFrequency(hold)
		m, err := core.Train(train.Rows, events, core.TrainOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  hold out %4d MHz: MAPE %5.2f%% on %d unseen experiments\n",
			hold, m.MAPE(test.Rows), len(test.Rows))
	}

	// Power landscape of one workload across the sweep.
	fmt.Println("\nmeasured node power for 24-thread workloads across the sweep:")
	fmt.Printf("  %-14s", "workload")
	for _, f := range freqs {
		fmt.Printf(" %6d", f)
	}
	fmt.Println(" (MHz)")
	for _, name := range []string{"compute", "addpd", "swim", "md", "idle"} {
		fmt.Printf("  %-14s", name)
		for _, f := range freqs {
			for _, r := range ds.Rows {
				if r.Workload == name && r.FreqMHz == f && r.Threads == 24 {
					fmt.Printf(" %5.0fW", r.PowerW)
				}
			}
		}
		fmt.Println()
	}
}
