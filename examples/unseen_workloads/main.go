// Unseen workloads: the paper's scenario 2 — train the model only on
// synthetic roco2 kernels and apply it to the SPEC OMP2012 proxies.
// Shows the per-workload systematic bias of Figure 5a and why "a
// limited set of micro workloads is not sufficient ... for calibrating
// the model parameters".
//
// Run with: go run ./examples/unseen_workloads
package main

import (
	"fmt"
	"log"
	"sort"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/stats"
	"pmcpower/internal/workloads"
)

func main() {
	var events []pmu.EventID
	for _, name := range []string{"LST_INS", "STL_CCY", "L3_TCM", "TOT_CYC", "BR_UCN", "BR_TKN"} {
		events = append(events, pmu.MustByName(name).ID)
	}
	freqs := []int{1200, 1600, 2000, 2400, 2600}

	ds, err := acquisition.Acquire(acquisition.Options{Seed: 42, Events: events},
		workloads.Active(), freqs)
	if err != nil {
		log.Fatal(err)
	}

	train := ds.ByClass(workloads.Synthetic)
	test := ds.ByClass(workloads.SPEC)
	fmt.Printf("training on %d synthetic experiments (%v)\n", len(train.Rows), train.Workloads())
	fmt.Printf("validating on %d SPEC experiments (%v)\n\n", len(test.Rows), test.Workloads())

	model, err := core.Train(train.Rows, events, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Per-workload bias across the DVFS sweep (Figure 5a view): the
	// estimate error is often systematic per workload, not random.
	type bias struct {
		name       string
		meanAPE    float64
		meanBiasPc float64
	}
	var rows []bias
	for _, name := range test.Workloads() {
		var actual, pred []float64
		for _, r := range test.Rows {
			if r.Workload != name {
				continue
			}
			actual = append(actual, r.PowerW)
			pred = append(pred, model.Predict(r))
		}
		rows = append(rows, bias{
			name:       name,
			meanAPE:    stats.MAPE(actual, pred),
			meanBiasPc: stats.MeanBias(actual, pred) / stats.Mean(actual) * 100,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].meanAPE > rows[j].meanAPE })
	fmt.Println("per-workload error of the synthetic-only model (all DVFS states):")
	fmt.Printf("  %-14s %10s %12s\n", "workload", "MAPE", "mean bias")
	for _, b := range rows {
		tag := ""
		if b.meanBiasPc > 3 {
			tag = "  consistently overestimated"
		} else if b.meanBiasPc < -3 {
			tag = "  consistently underestimated"
		}
		fmt.Printf("  %-14s %9.2f%% %+11.2f%%%s\n", b.name, b.meanAPE, b.meanBiasPc, tag)
	}

	var all []float64
	var allPred []float64
	for _, r := range test.Rows {
		all = append(all, r.PowerW)
		allPred = append(allPred, model.Predict(r))
	}
	fmt.Printf("\noverall scenario-2 MAPE: %.2f%%\n", stats.MAPE(all, allPred))

	// Contrast: the same model trained on everything (scenario-3
	// style) on the same test rows.
	full, err := core.Train(ds.Rows, events, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same rows, model trained on both suites: %.2f%%\n", full.MAPE(test.Rows))
	fmt.Println("\nthe gap is the paper's point: synthetic kernels alone do not span")
	fmt.Println("the behaviour of real applications, so the regression coefficients")
	fmt.Println("absorb suite-specific structure that does not transfer.")
}
