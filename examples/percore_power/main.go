// Per-core power: the capability the paper motivates in its
// introduction — physical sensors sit on the shared 12 V rail and
// cannot split power between "components with a common voltage source
// (e.g. multiple cores)"; a counter-based model can. This example
// traces a mixed run, reads the *per-core* PMC streams back from the
// trace archive, and attributes node power core by core.
//
// Run with: go run ./examples/percore_power
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"

	"pmcpower/internal/acquisition"
	"pmcpower/internal/core"
	"pmcpower/internal/pmu"
	"pmcpower/internal/trace"
	"pmcpower/internal/workloads"
)

func main() {
	var events []pmu.EventID
	for _, name := range []string{"LST_INS", "STL_CCY", "L3_TCM", "TOT_CYC", "BR_UCN", "BR_TKN"} {
		events = append(events, pmu.MustByName(name).ID)
	}

	// Train the model across the DVFS range.
	train, err := acquisition.Acquire(acquisition.Options{Seed: 42, Events: events},
		workloads.Active(), []int{1200, 1600, 2000, 2400, 2600})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(train.Rows, events, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Capture the trace of one md run at 2400 MHz and read the
	// per-core PMC streams back out of the archive.
	var archive []byte
	_, err = acquisition.Acquire(acquisition.Options{
		Seed:   7,
		Events: events,
		TraceSink: func(name string, data []byte) {
			if archive == nil {
				archive = append([]byte(nil), data...)
			}
		},
	}, []*workloads.Workload{workloads.MustByName("md")}, []int{2400})
	if err != nil {
		log.Fatal(err)
	}

	r, err := trace.NewReader(bytes.NewReader(archive))
	if err != nil {
		log.Fatal(err)
	}
	defs := r.Definitions()

	// Map locations to core indices and metrics to events.
	coreOf := map[trace.Ref]int{}
	for _, l := range defs.Locations {
		if c, ok := strings.CutPrefix(l.Name, "core "); ok {
			idx, err := strconv.Atoi(c)
			if err == nil {
				coreOf[l.Ref] = idx
			}
		}
	}
	eventOf := map[trace.Ref]pmu.EventID{}
	var voltRef trace.Ref = ^trace.Ref(0)
	for _, m := range defs.Metrics {
		if ev, err := pmu.ByName(m.Name); err == nil {
			eventOf[m.Ref] = ev.ID
		}
		if m.Name == "core_voltage" {
			voltRef = m.Ref
		}
	}

	// Accumulate per-core mean rates over the first phase window.
	type agg struct {
		sum float64
		n   float64
	}
	perCore := map[int]map[pmu.EventID]*agg{}
	var vSum, vN float64
	inPhase := false
	var phaseName string
	for {
		ev, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		switch ev.Kind {
		case trace.KindEnter:
			if phaseName == "" {
				inPhase = true
				phaseName = defs.Regions[ev.Region].Name
			}
		case trace.KindLeave:
			inPhase = false
		case trace.KindMetric:
			if !inPhase {
				continue
			}
			if ev.Metric == voltRef {
				vSum += ev.Value
				vN++
				continue
			}
			id, isPMC := eventOf[ev.Metric]
			c, isCore := coreOf[ev.Location]
			if !isPMC || !isCore {
				continue
			}
			m := perCore[c]
			if m == nil {
				m = map[pmu.EventID]*agg{}
				perCore[c] = m
			}
			a := m[id]
			if a == nil {
				a = &agg{}
				m[id] = a
			}
			a.sum += ev.Value
			a.n++
		}
	}

	coreRates := map[int]map[pmu.EventID]float64{}
	for c, m := range perCore {
		rates := map[pmu.EventID]float64{}
		for id, a := range m {
			rates[id] = a.sum / a.n
		}
		coreRates[c] = rates
	}
	voltage := vSum / vN

	per, err := model.AttributePerCore(coreRates, voltage, 2400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-core power attribution for md, phase %q @ 2400 MHz (V=%.3f):\n\n", phaseName, voltage)
	var total float64
	for _, cp := range per {
		socket := 0
		if cp.Core >= 12 {
			socket = 1
		}
		fmt.Printf("  core %2d (socket %d)  %6.2f W  %s\n",
			cp.Core, socket, cp.Watts, strings.Repeat("#", int(cp.Watts*8+0.5)))
		total += cp.Watts
	}
	fmt.Printf("\nnode estimate (sum): %.1f W across %d active cores\n", total, len(per))
	fmt.Println("\nno physical sensor on this machine could produce this split —")
	fmt.Println("all 24 cores share one 12 V input per socket (paper, introduction).")
}
